#include "screen/screen.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "util/serialize.h"

namespace sentinel::screen {

const char* to_string(ScreenMode mode) {
  switch (mode) {
    case ScreenMode::kOff: return "off";
    case ScreenMode::kScreen: return "screen";
    case ScreenMode::kFull: return "full";
  }
  return "off";
}

bool parse_screen_mode(const char* text, ScreenMode& out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "off") == 0) {
    out = ScreenMode::kOff;
  } else if (std::strcmp(text, "screen") == 0) {
    out = ScreenMode::kScreen;
  } else if (std::strcmp(text, "full") == 0) {
    out = ScreenMode::kFull;
  } else {
    return false;
  }
  return true;
}

ScreenBank::ScreenBank(const ScreenConfig& cfg, const kern::Kernels* kernels)
    : cfg_(cfg), kernels_(kernels != nullptr ? kernels : &kern::k()) {
  if (cfg_.window < 4 || cfg_.window > 64) {
    throw std::invalid_argument("ScreenBank: window must be in [4, 64]");
  }
  if (cfg_.warmup_windows < 2 || cfg_.warmup_windows > cfg_.window) {
    throw std::invalid_argument("ScreenBank: warmup_windows must be in [2, window]");
  }
  if (cfg_.deescalate_after == 0 || cfg_.deescalate_after > 0xffff) {
    throw std::invalid_argument("ScreenBank: deescalate_after must be in [1, 65535]");
  }
  if (!(cfg_.min_variance > 0.0)) {
    throw std::invalid_argument("ScreenBank: min_variance must be > 0");
  }

  // Tabulate the runs test per possible np. |runs - E[R]| > z * sqrt(Var[R])
  // with E[R] = 1 + 2*np*nn/n and Var[R] = (E[R]-1)(E[R]-2)/(n-1): squared
  // and folded into one threshold per np, so eval() is a table lookup, a
  // subtract, a multiply, and a compare.
  const double wn = static_cast<double>(cfg_.window);
  const double z2 = cfg_.runs_z_threshold * cfg_.runs_z_threshold;
  runs_er_.resize(cfg_.window + 1, 0.0);
  runs_thr_.resize(cfg_.window + 1, 0.0);
  for (std::size_t np = 0; np <= cfg_.window; ++np) {
    const double nn = wn - static_cast<double>(np);
    if (np == 0 || nn == 0.0) {
      // Sign collapse: every residual on one side of the baseline for W
      // windows -- a stuck value or a persistent steering offset.
      runs_er_[np] = 0.0;
      runs_thr_[np] = -1.0;  // (runs - 0)^2 > -1 always
      continue;
    }
    const double er = 1.0 + 2.0 * static_cast<double>(np) * nn / wn;
    const double vr_num = (er - 1.0) * (er - 2.0);  // Var[R] * (n-1)
    runs_er_[np] = er;
    runs_thr_[np] = vr_num > 0.0 ? z2 * vr_num / (wn - 1.0)
                                 : std::numeric_limits<double>::infinity();
  }
}

ScreenBank::Entry& ScreenBank::entry(SensorId sensor) {
  Entry* e;
  if (sensor < kDenseLimit) {
    if (sensor >= dense_.size()) dense_.resize(static_cast<std::size_t>(sensor) + 1);
    e = &dense_[sensor];
  } else {
    e = &sparse_[sensor];
  }
  if (!e->seen) {
    e->seen = true;
    e->ring_base = static_cast<std::uint32_t>(rings_.size());
    rings_.resize(rings_.size() + cfg_.window, 0.0);
    ++sensors_;
    ++escalated_now_;  // unseen sensors start escalated
  }
  return *e;
}

const ScreenBank::Entry* ScreenBank::find_entry(SensorId sensor) const {
  if (sensor < kDenseLimit) {
    if (sensor >= dense_.size() || !dense_[sensor].seen) return nullptr;
    return &dense_[sensor];
  }
  const auto it = sparse_.find(sensor);
  return it == sparse_.end() ? nullptr : &it->second;
}

ScreenDecision ScreenBank::observe(SensorId sensor, double residual) {
  StepAcc acc;
  const ScreenDecision d = step(entry(sensor), residual, acc);
  commit(acc);
  return d;
}

void ScreenBank::observe_block(const SensorId* sensors, const double* residuals,
                               std::size_t n, ScreenDecision* out) {
  StepAcc acc;
  for (std::size_t i = 0; i < n; ++i) {
    // entry() can grow the arena, so the ring pointer inside step() is
    // resolved per sensor, after any allocation.
    out[i] = step(entry(sensors[i]), residuals[i], acc);
  }
  commit(acc);
}

void ScreenBank::commit(const StepAcc& acc) {
  chi2_trips_ += acc.chi2_trips;
  runs_trips_ += acc.runs_trips;
  escalations_ += acc.escalations;
  escalated_now_ += acc.escalations;
  screened_windows_ += acc.screened_windows;
  escalated_windows_ += acc.escalated_windows;
}

ScreenDecision ScreenBank::step(Entry& e, double residual, StepAcc& acc) {
  const std::size_t w = cfg_.window;
  double* const ring = rings_.data() + e.ring_base;

  // Push into the ring with incremental moment updates; the kernel re-reduces
  // both sums exactly once per lap, so incremental rounding never outlives
  // one window.
  const std::uint32_t h = e.head;
  const double evicted = ring[h];
  ring[h] = residual;
  e.sum += residual - evicted;
  e.sumsq += residual * residual - evicted * evicted;

  // Sign and runs bookkeeping, branchless: for a healthy sensor the new
  // sign is a coin flip, so conditional code here would mispredict every
  // other window. Evicting the oldest sign and appending the newest moves
  // the time-ordered run count at exactly two pair boundaries.
  const std::uint32_t hp1 = (h + 1 == w) ? 0 : h + 1;  // oldest after push
  const std::uint32_t hm1 = (h == 0) ? static_cast<std::uint32_t>(w) - 1 : h - 1;
  const std::uint64_t m = e.sign_mask;
  const auto s_old = static_cast<std::uint32_t>((m >> h) & 1);
  const auto s_next = static_cast<std::uint32_t>((m >> hp1) & 1);
  const auto s_prev = static_cast<std::uint32_t>((m >> hm1) & 1);
  const std::uint32_t s_new = residual >= e.mu ? 1u : 0u;
  e.runs = static_cast<std::uint8_t>(e.runs - (s_old ^ s_next) + (s_new ^ s_prev));
  e.np = static_cast<std::uint8_t>(e.np - s_old + s_new);
  e.sign_mask = (m & ~(1ull << h)) | (static_cast<std::uint64_t>(s_new) << h);
  e.head = static_cast<std::uint8_t>(hp1);
  e.count += (e.count < 0xffffu) ? 1 : 0;

  // The kernel invocations (per-lap re-reduce, baseline freeze) are
  // quarantined in the noinline cold path: a potential call inside the
  // block loop would force every cached Entry field and accumulator back
  // to memory on each sensor, roughly doubling the line-rate cost. The
  // cold path also recounts runs/np from the mask, so incremental drift
  // (there is none -- the updates are exact -- but belt and braces)
  // cannot outlive a lap.
  if (e.head == 0 || !e.baseline_ready) [[unlikely]] {
    return step_cold(e, residual, acc);
  }
  return eval(e, residual, acc);
}

__attribute__((noinline)) ScreenDecision ScreenBank::step_cold(Entry& e, double residual,
                                                               StepAcc& acc) {
  const std::size_t w = cfg_.window;
  double* const ring = rings_.data() + e.ring_base;
  if (e.head == 0) kernels_->sum_sumsq(ring, w, &e.sum, &e.sumsq);

  // Freeze the baseline from the opening residuals, then re-sign the ring
  // against it so the runs window does not inherit the mu = 0 bootstrap.
  if (!e.baseline_ready && e.count >= cfg_.warmup_windows) {
    double s = 0.0;
    double q = 0.0;
    kernels_->sum_sumsq(ring, cfg_.warmup_windows, &s, &q);
    const double n = static_cast<double>(cfg_.warmup_windows);
    e.mu = s / n;
    e.var = std::max(q / n - e.mu * e.mu, cfg_.min_variance);
    e.baseline_ready = true;
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < cfg_.warmup_windows; ++i) {
      if (ring[i] >= e.mu) mask |= 1ull << i;
    }
    e.sign_mask = mask;
  }
  recount_runs(e);
  return eval(e, residual, acc);
}

/// Exact runs/np from the sign mask (rotate so bit 0 is the oldest sign,
/// then count sign-change boundaries). Cold-path only; the hot path keeps
/// both counters incrementally and lands on the same values.
void ScreenBank::recount_runs(Entry& e) const {
  const std::size_t w = cfg_.window;
  const std::uint64_t full = (w == 64) ? ~0ull : ((1ull << w) - 1);
  const std::uint64_t rot =
      e.head == 0
          ? (e.sign_mask & full)
          : (((e.sign_mask >> e.head) | (e.sign_mask << (w - e.head))) & full);
  e.np = static_cast<std::uint8_t>(std::popcount(rot));
  e.runs = static_cast<std::uint8_t>(std::popcount((rot ^ (rot >> 1)) & (full >> 1)) + 1);
}

inline ScreenDecision ScreenBank::eval(Entry& e, double residual, StepAcc& acc) {
  const std::size_t w = cfg_.window;
  ScreenDecision d;
  bool trip = false;
  if (e.baseline_ready && e.count >= w) {
    // Windowed chi-squared: sum over the ring of (r - mu)^2 / var, expanded
    // through the ring's running moments (sum, sumsq are kernel-identical
    // across levels, so the statistic is too). Division-free: the test
    // centered/var > thr*W is evaluated as centered > thr*W*var -- this is
    // the per-sensor line-rate hot path, every flop counts.
    const double wn = static_cast<double>(w);
    const double centered = e.sumsq - 2.0 * e.mu * e.sum + wn * e.mu * e.mu;
    d.chi2_trip = centered > cfg_.chi2_threshold * wn * e.var;

    // Runs monitor over the sign sequence in time order: the run and sign
    // counts are maintained incrementally by step() (recounted from the
    // mask on every cold step), and the per-np constants come from the
    // ctor's tables -- branchless, division-free, sqrt-free.
    const double dev = static_cast<double>(e.runs) - runs_er_[e.np];
    d.runs_trip = dev * dev > runs_thr_[e.np];
    trip = d.chi2_trip | d.runs_trip;
    acc.chi2_trips += d.chi2_trip ? 1 : 0;
    acc.runs_trips += d.runs_trip ? 1 : 0;
  }
  e.last_trip = trip;

  if (trip && !e.escalated) {
    e.escalated = true;
    e.clean_windows = 0;
    d.escalated_edge = true;
    ++acc.escalations;
  }

  // The baseline tracks environment drift only through windows the screens
  // accept, so an active fault cannot teach it.
  if (!trip && e.baseline_ready) {
    e.mu += cfg_.baseline_alpha * (residual - e.mu);
    const double dev = residual - e.mu;
    e.var = std::max((1.0 - cfg_.baseline_alpha) * e.var + cfg_.baseline_alpha * dev * dev,
                     cfg_.min_variance);
  }

  d.full_path = e.escalated;
  acc.escalated_windows += e.escalated ? 1 : 0;
  acc.screened_windows += e.escalated ? 0 : 1;
  return d;
}

void ScreenBank::resolve(SensorId sensor, bool full_tier_clean) {
  Entry* e = nullptr;
  if (sensor < kDenseLimit) {
    if (sensor < dense_.size() && dense_[sensor].seen) e = &dense_[sensor];
  } else {
    const auto it = sparse_.find(sensor);
    if (it != sparse_.end()) e = &it->second;
  }
  if (e == nullptr || !e->escalated) return;
  if (full_tier_clean && !e->last_trip && e->count >= cfg_.window) {
    if (++e->clean_windows >= cfg_.deescalate_after) {
      e->escalated = false;
      e->clean_windows = 0;
      ++deescalations_;
      --escalated_now_;
    }
  } else {
    e->clean_windows = 0;
  }
}

bool ScreenBank::is_escalated(SensorId sensor) const {
  const Entry* e = find_entry(sensor);
  return e == nullptr ? true : e->escalated;
}

ScreenStats ScreenBank::stats() const {
  ScreenStats s;
  s.sensors = sensors_;
  s.escalated = escalated_now_;
  s.escalations = escalations_;
  s.deescalations = deescalations_;
  s.chi2_trips = chi2_trips_;
  s.runs_trips = runs_trips_;
  s.screened_windows = screened_windows_;
  s.escalated_windows = escalated_windows_;
  return s;
}

void ScreenBank::save_entry(serialize::Writer& w, SensorId id, const Entry& e) const {
  serialize::put(w, id);
  // Fixed-width fields (the in-memory Entry packs these narrower).
  serialize::put(w, static_cast<std::uint32_t>(e.count));
  serialize::put(w, static_cast<std::uint32_t>(e.head));
  serialize::put(w, e.sign_mask);
  for (std::size_t i = 0; i < cfg_.window; ++i) serialize::put(w, rings_[e.ring_base + i]);
  serialize::put(w, e.sum);
  serialize::put(w, e.sumsq);
  serialize::put(w, e.mu);
  serialize::put(w, e.var);
  serialize::put(w, e.baseline_ready);
  serialize::put(w, e.escalated);
  serialize::put(w, e.last_trip);
  serialize::put(w, static_cast<std::uint32_t>(e.clean_windows));
}

void ScreenBank::save(serialize::Writer& w) const {
  serialize::put(w, sensors_);
  // Dense ids precede sparse ids numerically, so this emits ascending order.
  for (SensorId id = 0; id < dense_.size(); ++id) {
    if (dense_[id].seen) save_entry(w, id, dense_[id]);
  }
  for (const auto& [id, e] : sparse_) save_entry(w, id, e);
  serialize::put(w, escalations_);
  serialize::put(w, deescalations_);
  serialize::put(w, chi2_trips_);
  serialize::put(w, runs_trips_);
  serialize::put(w, screened_windows_);
  serialize::put(w, escalated_windows_);
}

void ScreenBank::load(serialize::Reader& r) {
  dense_.clear();
  sparse_.clear();
  rings_.clear();
  sensors_ = 0;
  escalated_now_ = 0;
  const auto n = serialize::get<std::size_t>(r);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = serialize::get<SensorId>(r);
    Entry& e = entry(id);
    const auto count = serialize::get<std::uint32_t>(r);
    const auto head = serialize::get<std::uint32_t>(r);
    if (head >= cfg_.window) {
      throw std::runtime_error("screen checkpoint: ring head out of range (window mismatch?)");
    }
    e.count = static_cast<std::uint16_t>(std::min<std::uint32_t>(count, 0xffffu));
    e.head = static_cast<std::uint8_t>(head);
    e.sign_mask = serialize::get<std::uint64_t>(r);
    for (std::size_t j = 0; j < cfg_.window; ++j) {
      rings_[e.ring_base + j] = serialize::get<double>(r);
    }
    e.sum = serialize::get<double>(r);
    e.sumsq = serialize::get<double>(r);
    e.mu = serialize::get<double>(r);
    e.var = serialize::get<double>(r);
    e.baseline_ready = serialize::get_bool(r);
    const bool escalated = serialize::get_bool(r);
    if (!escalated) --escalated_now_;  // entry() counted it escalated
    e.escalated = escalated;
    e.last_trip = serialize::get_bool(r);
    e.clean_windows =
        static_cast<std::uint16_t>(std::min<std::uint32_t>(
            serialize::get<std::uint32_t>(r), 0xffffu));
    // runs/np are derived state, not serialized: recount from the mask.
    recount_runs(e);
  }
  escalations_ = serialize::get<std::size_t>(r);
  deescalations_ = serialize::get<std::size_t>(r);
  chi2_trips_ = serialize::get<std::size_t>(r);
  runs_trips_ = serialize::get<std::size_t>(r);
  screened_windows_ = serialize::get<std::size_t>(r);
  escalated_windows_ = serialize::get<std::size_t>(r);
}

}  // namespace sentinel::screen
