// First-tier per-sensor screens that gate the full clustering + HMM path.
//
// At fleet scale most sensors are healthy in most windows, yet the pipeline
// pays the full model-state mapping + alarm-filter + HMM cost for every
// sensor every window -- detection cost is O(sensors) when it should be
// O(suspicious). This tier keeps one cheap statistical monitor per sensor
// and decides, before the expensive per-sensor stages run, whether a sensor
// stays in the "screened" state (one scalar residual push per window) or is
// escalated to the full diagnosis path:
//
//  - a *windowed chi-squared* detector (after the residual-based detectors
//    of arXiv 1710.02573): the squared deviation of the sensor's scalar
//    residual from its learned baseline, summed over the last W windows and
//    normalized by the baseline variance. Healthy sensors concentrate near
//    W; faults and value-steering attacks inflate the statistic.
//  - a *serial-randomness (runs) monitor* (after the randomness-deficiency
//    tests of arXiv 2005.07832): the number of sign runs in the last W
//    residuals. A healthy sensor's residuals flip sign like noise; a
//    stuck-at fault collapses to one run, and a stealthy in-band attack that
//    stays under the chi-squared radar still shows a persistent sign bias
//    or an unnaturally periodic flip pattern. The statistic is integer
//    (popcounts over a sign bitmask) compared against per-np tabulated
//    limits, so it is exactly reproducible everywhere.
//
// Escalation is hysteretic: escalate immediately on either trip (a window
// of evidence is never discarded), de-escalate only after K consecutive
// windows in which the screens are quiet AND the full tier saw nothing
// (no raw alarm, no active track). Unseen sensors start escalated -- the
// full path owns a sensor until its screens have a warm baseline.
//
// Determinism: all reductions go through the util/kernels function table
// (sum_sumsq / sumsq), whose levels are bit-identical by contract, and the
// per-sensor state machine is a pure function of that sensor's residual
// history -- so escalation decisions are bit-identical at any thread count
// and under any SENTINEL_KERNELS forcing. The incremental ring sums are
// re-reduced through the kernel every time the ring wraps, so floating-
// point drift from the add/subtract updates is bounded by one window.
//
// Thread-safety: a ScreenBank is single-writer, like the pipeline that owns
// it; stats() is safe on a quiescent bank.

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "trace/record.h"
#include "util/kernels.h"
#include "util/serialize_fwd.h"
#include "util/vecn.h"

namespace sentinel::screen {

/// How the pipeline uses the screen tier.
///  - kOff: tier disabled; the pipeline is byte-identical to a build that
///    never heard of screening (no screen work, no checkpoint section).
///  - kScreen: screens gate the full path -- screened sensors skip the
///    per-sensor mapping/alarm/HMM stages and vote as a bloc.
///  - kFull: screens run observationally (trip counters, escalation state)
///    but every sensor still takes the full path. Detection results equal
///    kOff; used to measure screen ROC against the HMM tier on one run.
enum class ScreenMode { kOff = 0, kScreen = 1, kFull = 2 };

const char* to_string(ScreenMode mode);
/// Parse "off" / "screen" / "full". Returns false on anything else.
bool parse_screen_mode(const char* text, ScreenMode& out);

struct ScreenConfig {
  ScreenMode mode = ScreenMode::kOff;

  /// W: residual windows per statistic. 4..64 (the sign history is one
  /// 64-bit mask). 16 gives the chi-squared statistic enough mass to
  /// separate faults from noise within a few hours at the paper's 1-hour
  /// windows while keeping the per-sensor state one cache line of ring.
  std::size_t window = 16;

  /// Chi-squared trip when stat > chi2_threshold * W. Healthy sensors have
  /// E[stat] ~= W; 3.0 sits above the 99.9th percentile of chi^2(16)/16
  /// (~2.4) with margin for baseline-estimation error.
  double chi2_threshold = 3.0;

  /// Runs-monitor trip when |z| of the run count exceeds this (z ~ N(0,1)
  /// for healthy sensors). A one-sided sign collapse (all residuals on one
  /// side of the baseline for W windows) trips unconditionally.
  double runs_z_threshold = 3.2;

  /// Residuals observed before the baseline (mu, sigma^2) is frozen from
  /// the opening window and screening can begin. 2..window.
  std::size_t warmup_windows = 8;

  /// K: consecutive windows with quiet screens and a quiet full tier before
  /// an escalated sensor drops back to screened. Escalate fast, de-escalate
  /// slow -- a flapping sensor stays on the full path.
  std::size_t deescalate_after = 24;

  /// EMA gain for the baseline drift tracking (applied only on windows the
  /// screens accept, so an active fault cannot teach the baseline).
  double baseline_alpha = 0.02;

  /// Variance floor: a sensor whose residuals are near-constant (a silent
  /// digital channel) must not divide by ~0.
  double min_variance = 1e-6;
};

/// Per-window decision for one sensor.
struct ScreenDecision {
  bool full_path = false;       // sensor takes the full per-sensor path now
  bool chi2_trip = false;       // windowed chi-squared fired this window
  bool runs_trip = false;       // serial-randomness monitor fired
  bool escalated_edge = false;  // screened -> escalated on this window
};

/// Cumulative tier statistics (single-writer; read when quiescent).
struct ScreenStats {
  std::size_t sensors = 0;            // sensors ever observed
  std::size_t escalated = 0;          // currently escalated
  std::size_t escalations = 0;        // screened -> escalated edges
  std::size_t deescalations = 0;      // escalated -> screened edges
  std::size_t chi2_trips = 0;         // sensor-windows the chi^2 screen fired
  std::size_t runs_trips = 0;         // sensor-windows the runs screen fired
  std::size_t screened_windows = 0;   // sensor-windows that skipped the full path
  std::size_t escalated_windows = 0;  // sensor-windows on the full path
};

class ScreenBank {
 public:
  /// `kernels` defaults to the process-wide dispatch (kern::k()); tests pass
  /// a specific level table to prove cross-level bit-identity in-process.
  explicit ScreenBank(const ScreenConfig& cfg, const kern::Kernels* kernels = nullptr);

  /// Feed one sensor's scalar residual for the current window: pushes it
  /// into the ring, evaluates both screens, and applies the escalate-fast
  /// edge. Sensors never seen before start escalated.
  ScreenDecision observe(SensorId sensor, double residual);

  /// Batched observe: one call per window instead of one per sensor. The
  /// per-sensor update is a serial dependency chain (ring push -> moments ->
  /// trip tests -> baseline EMA), so feeding sensors one call at a time
  /// leaves the core idle between chains; the block loop lets independent
  /// sensors' chains overlap in the out-of-order window. Decisions are
  /// written to `out[i]` for `sensors[i]` and are identical to n calls of
  /// observe() in order.
  void observe_block(const SensorId* sensors, const double* residuals, std::size_t n,
                     ScreenDecision* out);

  /// Close the window for an escalated sensor after the full tier ran:
  /// `full_tier_clean` means no raw alarm and no active track this window.
  /// K consecutive clean windows (screens quiet too) de-escalate. No-op for
  /// screened or unseen sensors.
  void resolve(SensorId sensor, bool full_tier_clean);

  bool is_escalated(SensorId sensor) const;

  ScreenStats stats() const;
  const ScreenConfig& config() const { return cfg_; }

  /// Persist / restore every sensor's ring, baseline, and escalation state
  /// plus the tier totals (the "sentinel-screen-v1" checkpoint section).
  /// load() expects a bank built from the same ScreenConfig.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

 private:
  /// One cache line per sensor. The residual ring itself lives in the
  /// bank-level `rings_` arena (entries allocated in first-touch order, so
  /// a fleet iterating sensors in id order walks the arena sequentially) --
  /// a per-entry heap block would cost a dependent pointer chase per sensor
  /// per window on the line-rate path.
  struct Entry {
    double sum = 0.0;             // running sum of ring (kernel-refreshed)
    double sumsq = 0.0;           // running sum of squares (kernel-refreshed)
    double mu = 0.0;              // baseline residual mean
    double var = 1.0;             // baseline residual variance
    std::uint64_t sign_mask = 0;  // bit i: ring[i] >= mu at push time
    std::uint32_t ring_base = 0;  // offset of this sensor's ring in rings_
    std::uint16_t count = 0;      // residuals observed (saturating)
    std::uint16_t clean_windows = 0;  // consecutive clean windows (saturating)
    std::uint8_t head = 0;        // next ring write position (window <= 64)
    // The runs statistic, maintained incrementally: replacing the oldest
    // sign changes the time-ordered run count at exactly two boundaries
    // (the evicted oldest pair, the appended newest pair), so the per-
    // window update is a handful of bit tests instead of a mask rotation
    // plus popcounts. Both are recomputed from sign_mask on every cold
    // step, so drift cannot survive a ring lap.
    std::uint8_t runs = 0;        // time-ordered sign runs in the ring
    std::uint8_t np = 0;          // signs >= baseline in the ring
    bool baseline_ready = false;
    bool escalated = true;        // full path owns unseen sensors
    bool last_trip = false;       // either screen fired on the last window
    bool seen = false;            // dense slots: entry actually observed
  };

  /// Small sensor ids index a flat vector (same policy as AlarmBank);
  /// pathological ids fall back to the ordered map.
  static constexpr SensorId kDenseLimit = 1u << 16;

  /// Per-block tallies kept in registers: the bank's member counters share
  /// a store type with Entry fields, so updating them inside the hot loop
  /// would defeat enregistration (the compiler must assume aliasing).
  struct StepAcc {
    std::size_t chi2_trips = 0;
    std::size_t runs_trips = 0;
    std::size_t escalations = 0;
    std::size_t screened_windows = 0;
    std::size_t escalated_windows = 0;
  };

  Entry& entry(SensorId sensor);
  const Entry* find_entry(SensorId sensor) const;
  /// The per-sensor update, split hot/cold: step() is call-free (fully
  /// enregisterable inside observe_block's loop); the rare kernel work --
  /// per-lap re-reduce and the one-time baseline freeze -- lives in the
  /// noinline step_cold(). Both finish through eval() (trips, escalation
  /// edge, baseline EMA); commit() folds the register tallies into the
  /// bank's counters once per block.
  ScreenDecision step(Entry& e, double residual, StepAcc& acc);
  ScreenDecision step_cold(Entry& e, double residual, StepAcc& acc);
  ScreenDecision eval(Entry& e, double residual, StepAcc& acc);
  void commit(const StepAcc& acc);
  void recount_runs(Entry& e) const;
  void save_entry(serialize::Writer& w, SensorId id, const Entry& e) const;

  ScreenConfig cfg_;
  const kern::Kernels* kernels_;
  std::vector<Entry> dense_;
  std::map<SensorId, Entry> sparse_;
  std::vector<double> rings_;  // ring arena, `window` doubles per seen entry

  /// Runs-test constants indexed by np (signs above baseline): the expected
  /// run count and the squared-deviation trip limit depend only on np and W,
  /// so the ctor tabulates them and the per-sensor test collapses to
  /// (runs - er[np])^2 > thr[np] -- no division, no branch, no sqrt on the
  /// line-rate path. Sign collapse (np == 0 or W) gets thr = -1 (always
  /// trips); a variance too small for the normal approximation gets
  /// thr = +inf (never trips).
  std::vector<double> runs_er_;
  std::vector<double> runs_thr_;

  std::size_t sensors_ = 0;
  std::size_t escalated_now_ = 0;
  std::size_t escalations_ = 0;
  std::size_t deescalations_ = 0;
  std::size_t chi2_trips_ = 0;
  std::size_t runs_trips_ = 0;
  std::size_t screened_windows_ = 0;
  std::size_t escalated_windows_ = 0;
};

/// The scalar residual the screens monitor: sum(p) - sum(mean), both sides
/// through vecn::scalar_sum's fixed accumulation order. Signed, so the runs
/// monitor sees direction; a per-sensor bias against the network mean is
/// absorbed by the baseline mu. Defined as a difference of component sums
/// (not a sum of componentwise differences) so the line-rate path can use a
/// per-sensor sum precomputed at aggregation time (ObservationSet::rep_sums)
/// and get bit-identical residuals without ever touching the full point.
inline double scalar_residual(std::span<const double> p, std::span<const double> mean) {
  return vecn::scalar_sum(p) - vecn::scalar_sum(mean);
}

}  // namespace sentinel::screen
