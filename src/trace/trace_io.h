// CSV trace reading/writing.
//
// Format (one record per line):   sensor_id,time_seconds,x_1,...,x_n
// '#'-prefixed lines are comments; blank lines are ignored. A malformed line
// (wrong field count, non-numeric field) is *counted*, not fatal: the GDI
// deployment the paper evaluates on had missing and malformed packets, and
// the methodology is expected to tolerate them.
//
// Two readers share the per-line grammar below, so they accept identical
// record sets: read_trace (istream + getline, the simple path) and the
// zero-copy batch reader in trace/trace_reader.h (mmap + string_view slicing,
// the fast path). read_trace_file() auto-detects the binary trace format
// (trace/binary_trace.h) by its magic, so every file-path entry point takes
// either format.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.h"

namespace sentinel {

struct TraceReadResult {
  std::vector<SensorRecord> records;
  std::size_t malformed_lines = 0;
  std::size_t comment_lines = 0;
};

/// Validated double -> SensorId conversion. nullopt for NaN, negative,
/// fractional, or out-of-range values -- casting such a double straight to an
/// integer type is undefined behavior, so the range check must come first.
std::optional<SensorId> to_sensor_id(double v);

enum class LineParse { kRecord, kComment, kBlank, kMalformed };

/// Parse one CSV line into `rec` without allocating in steady state: fields
/// are string_views into `line` (split via `fields` scratch), numbers parse
/// with from_chars, and rec.attrs is overwritten element-wise so it keeps its
/// capacity across calls. `expected_dims` = 0 accepts any width >= 1 and is
/// fixed by the first record. `rec` is only valid when kRecord is returned.
LineParse parse_trace_line(std::string_view line, std::size_t& expected_dims, SensorRecord& rec,
                           std::vector<std::string_view>& fields);

/// Parse records from a stream. `expected_dims` = 0 accepts any width >= 1
/// (first data line fixes it); otherwise rows with a different width count as
/// malformed.
TraceReadResult read_trace(std::istream& in, std::size_t expected_dims = 0);

/// Convenience: read a whole trace file, CSV or binary (auto-detected by
/// magic). Throws std::runtime_error if the file cannot be opened or a
/// binary file is corrupt.
TraceReadResult read_trace_file(const std::string& path, std::size_t expected_dims = 0);

/// Write records to a stream, with an optional schema comment header.
void write_trace(std::ostream& out, const std::vector<SensorRecord>& records,
                 const AttrSchema* schema = nullptr);

/// Convenience: write to a file path. Throws std::runtime_error on failure.
void write_trace_file(const std::string& path, const std::vector<SensorRecord>& records,
                      const AttrSchema* schema = nullptr);

}  // namespace sentinel
