// CSV trace reading/writing.
//
// Format (one record per line):   sensor_id,time_seconds,x_1,...,x_n
// '#'-prefixed lines are comments; blank lines are ignored. A malformed line
// (wrong field count, non-numeric field) is *counted*, not fatal: the GDI
// deployment the paper evaluates on had missing and malformed packets, and
// the methodology is expected to tolerate them.
//
// Two readers share the per-line grammar below, so they accept identical
// record sets: read_trace (istream + getline, the simple path) and the
// zero-copy batch reader in trace/trace_reader.h (mmap + string_view slicing,
// the fast path). read_trace_file() auto-detects the binary trace format
// (trace/binary_trace.h) by its magic, so every file-path entry point takes
// either format.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.h"
#include "util/status.h"

namespace sentinel {

/// Validated double -> SensorId conversion. nullopt for NaN, negative,
/// fractional, or out-of-range values -- casting such a double straight to an
/// integer type is undefined behavior, so the range check must come first.
std::optional<SensorId> to_sensor_id(double v);

/// Per-line parse outcome. The malformed variants attribute the *cause*, so
/// every reader (getline, mmap, buffered-stream) reports identical per-cause
/// drop counts on the same bytes -- a feed that is 90% bad-sensor-ids is a
/// different operational problem than one that is 90% short lines.
enum class LineParse {
  kRecord,
  kComment,
  kBlank,
  kBadFieldCount,  // fewer than sensor,time,x_1
  kDimsMismatch,   // width disagrees with the trace's fixed dimensionality
  kBadSensorId,    // id field not a valid uint32 (negative, fractional, huge)
  kBadNumber,      // unparseable time or attribute field
};

constexpr bool is_malformed(LineParse p) {
  return p == LineParse::kBadFieldCount || p == LineParse::kDimsMismatch ||
         p == LineParse::kBadSensorId || p == LineParse::kBadNumber;
}

/// Malformed-line tally broken down by cause. Every CSV reader keeps one;
/// equality across readers on the same input is test-enforced.
struct MalformedCounts {
  std::size_t bad_field_count = 0;
  std::size_t dims_mismatch = 0;
  std::size_t bad_sensor_id = 0;
  std::size_t bad_number = 0;

  std::size_t total() const {
    return bad_field_count + dims_mismatch + bad_sensor_id + bad_number;
  }
  void count(LineParse p) {
    switch (p) {
      case LineParse::kBadFieldCount: ++bad_field_count; break;
      case LineParse::kDimsMismatch: ++dims_mismatch; break;
      case LineParse::kBadSensorId: ++bad_sensor_id; break;
      case LineParse::kBadNumber: ++bad_number; break;
      default: break;
    }
  }
  MalformedCounts& operator+=(const MalformedCounts& o) {
    bad_field_count += o.bad_field_count;
    dims_mismatch += o.dims_mismatch;
    bad_sensor_id += o.bad_sensor_id;
    bad_number += o.bad_number;
    return *this;
  }
  /// Per-cause difference (resume accounting: what a reader tallied *after*
  /// the skipped prefix). Caller guarantees o is a componentwise prefix.
  friend MalformedCounts operator-(MalformedCounts a, const MalformedCounts& o) {
    a.bad_field_count -= o.bad_field_count;
    a.dims_mismatch -= o.dims_mismatch;
    a.bad_sensor_id -= o.bad_sensor_id;
    a.bad_number -= o.bad_number;
    return a;
  }
  friend bool operator==(const MalformedCounts&, const MalformedCounts&) = default;
};

std::string to_string(const MalformedCounts& m);

struct TraceReadResult {
  std::vector<SensorRecord> records;
  /// Total malformed lines (== malformed.total(); kept as a field because
  /// most callers only care about the headline number).
  std::size_t malformed_lines = 0;
  std::size_t comment_lines = 0;
  MalformedCounts malformed;
  /// Non-ok when the source failed mid-stream (e.g. a truncated binary
  /// trace): `records` holds everything read up to the failure.
  util::Status status;
};

/// Parse one CSV line into `rec` without allocating in steady state: fields
/// are string_views into `line` (split via `fields` scratch), numbers parse
/// with from_chars, and rec.attrs is overwritten element-wise so it keeps its
/// capacity across calls. `expected_dims` = 0 accepts any width >= 1 and is
/// fixed by the first record. `rec` is only valid when kRecord is returned.
LineParse parse_trace_line(std::string_view line, std::size_t& expected_dims, SensorRecord& rec,
                           std::vector<std::string_view>& fields);

/// Parse records from a stream. `expected_dims` = 0 accepts any width >= 1
/// (first data line fixes it); otherwise rows with a different width count as
/// malformed.
TraceReadResult read_trace(std::istream& in, std::size_t expected_dims = 0);

/// Convenience: read a whole trace file, CSV or binary (auto-detected by
/// magic). Throws std::runtime_error if the file cannot be opened or a
/// binary header is structurally invalid; a file that turns out truncated
/// mid-stream yields the readable prefix with a non-ok result.status.
TraceReadResult read_trace_file(const std::string& path, std::size_t expected_dims = 0);

/// Write records to a stream, with an optional schema comment header.
void write_trace(std::ostream& out, const std::vector<SensorRecord>& records,
                 const AttrSchema* schema = nullptr);

/// Convenience: write to a file path. Throws std::runtime_error on failure.
void write_trace_file(const std::string& path, const std::vector<SensorRecord>& records,
                      const AttrSchema* schema = nullptr);

}  // namespace sentinel
