// CSV trace reading/writing.
//
// Format (one record per line):   sensor_id,time_seconds,x_1,...,x_n
// '#'-prefixed lines are comments; blank lines are ignored. A malformed line
// (wrong field count, non-numeric field) is *counted*, not fatal: the GDI
// deployment the paper evaluates on had missing and malformed packets, and
// the methodology is expected to tolerate them.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.h"

namespace sentinel {

struct TraceReadResult {
  std::vector<SensorRecord> records;
  std::size_t malformed_lines = 0;
  std::size_t comment_lines = 0;
};

/// Parse records from a stream. `expected_dims` = 0 accepts any width >= 1
/// (first data line fixes it); otherwise rows with a different width count as
/// malformed.
TraceReadResult read_trace(std::istream& in, std::size_t expected_dims = 0);

/// Convenience: read from a file path. Throws std::runtime_error if the file
/// cannot be opened.
TraceReadResult read_trace_file(const std::string& path, std::size_t expected_dims = 0);

/// Write records to a stream, with an optional schema comment header.
void write_trace(std::ostream& out, const std::vector<SensorRecord>& records,
                 const AttrSchema* schema = nullptr);

/// Convenience: write to a file path. Throws std::runtime_error on failure.
void write_trace_file(const std::string& path, const std::vector<SensorRecord>& records,
                      const AttrSchema* schema = nullptr);

}  // namespace sentinel
