#include "trace/trace_reader.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "trace/binary_trace.h"
#include "trace/trace_io.h"

namespace sentinel {

namespace {

constexpr std::size_t kStreamBufBytes = 1 << 20;  // 1 MiB refill buffer

}  // namespace

std::size_t TraceReader::skip_records(std::size_t n) {
  // Generic fallback: read into scratch and discard. Text formats must parse
  // the prefix anyway (records have no fixed width), and the malformed /
  // comment tallies stay exactly what a straight read would produce.
  std::vector<SensorRecord> scratch;
  std::size_t skipped = 0;
  while (skipped < n) {
    const std::size_t want = std::min(n - skipped, kDefaultBatch);
    const std::size_t got = read_batch(scratch, want);
    if (got == 0) break;
    skipped += got;
  }
  return skipped;
}

CsvTraceReader::CsvTraceReader(const std::string& path, std::size_t expected_dims, Mode mode)
    : expected_dims_(expected_dims) {
  if (mode == Mode::kAuto) {
    map_ = util::MappedFile::map(path);
    if (map_) {
      rest_ = map_->view();
      return;
    }
  }
  in_.open(path, std::ios::binary);
  if (!in_) throw std::runtime_error("CsvTraceReader: cannot open " + path);
  buf_.resize(kStreamBufBytes);
}

/// Shift the unconsumed tail to the front of the buffer and read more bytes
/// after it. Returns false when no new bytes arrived (true end of file).
bool CsvTraceReader::refill() {
  if (stream_eof_) return false;
  const std::size_t tail = buf_end_ - buf_pos_;
  if (tail > 0) std::memmove(buf_.data(), buf_.data() + buf_pos_, tail);
  buf_pos_ = 0;
  buf_end_ = tail;
  // A line longer than the whole buffer: grow so it can ever complete.
  if (buf_end_ == buf_.size()) buf_.resize(buf_.size() * 2);
  in_.read(buf_.data() + buf_end_, static_cast<std::streamsize>(buf_.size() - buf_end_));
  const auto got = static_cast<std::size_t>(in_.gcount());
  buf_end_ += got;
  if (got == 0) {
    stream_eof_ = true;
    // Distinguish clean EOF from a device-level read failure: the latter is
    // a mid-stream data loss the consumer must see as a Status, not as a
    // silently short trace.
    if (in_.bad()) {
      status_ = util::Status(util::StatusCode::kDataLoss, "csv trace: read error mid-stream");
    }
  }
  return got > 0;
}

std::optional<std::string_view> CsvTraceReader::next_line() {
  if (map_) {
    if (rest_.empty()) return std::nullopt;
    const std::size_t nl = rest_.find('\n');
    std::string_view line;
    if (nl == std::string_view::npos) {
      line = rest_;
      rest_ = {};
    } else {
      line = rest_.substr(0, nl);
      rest_.remove_prefix(nl + 1);
    }
    return line;
  }
  for (;;) {
    const char* base = buf_.data() + buf_pos_;
    const std::size_t avail = buf_end_ - buf_pos_;
    const void* nl = std::memchr(base, '\n', avail);
    if (nl != nullptr) {
      const auto len = static_cast<std::size_t>(static_cast<const char*>(nl) - base);
      buf_pos_ += len + 1;
      return std::string_view(base, len);
    }
    if (!refill()) {
      // Final line without a trailing newline.
      if (avail == 0) return std::nullopt;
      buf_pos_ = buf_end_;
      return std::string_view(buf_.data(), avail);
    }
  }
}

std::size_t CsvTraceReader::read_batch(std::vector<SensorRecord>& out, std::size_t max_records) {
  std::size_t n = 0;
  while (n < max_records) {
    const auto line = next_line();
    if (!line) break;
    if (n == out.size()) out.emplace_back();
    const LineParse p = parse_trace_line(*line, expected_dims_, out[n], fields_);
    switch (p) {
      case LineParse::kRecord: ++n; break;
      case LineParse::kComment: ++comments_; break;
      case LineParse::kBlank: break;
      default: malformed_.count(p); break;
    }
  }
  out.resize(n);  // only shrinks on the final partial batch
  return n;
}

std::unique_ptr<TraceReader> open_trace_reader(const std::string& path,
                                               std::size_t expected_dims) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) throw std::runtime_error("open_trace_reader: cannot open " + path);
  char magic[sizeof kBinaryTraceMagic] = {};
  probe.read(magic, sizeof magic);
  if (probe.gcount() == static_cast<std::streamsize>(sizeof magic) &&
      std::memcmp(magic, kBinaryTraceMagic, sizeof magic) == 0) {
    probe.close();
    return std::make_unique<BinaryTraceReader>(path, expected_dims);
  }
  probe.close();
  return std::make_unique<CsvTraceReader>(path, expected_dims);
}

}  // namespace sentinel
