// Core trace types.
//
// The paper's data model (section 3.1): each sensor j periodically sends a
// message <t, p> to a single collector node, where p = <x_1, ..., x_n> is the
// vector of n environment attributes sampled at time t. SensorRecord is that
// message. Time is in seconds from the start of the deployment.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/vecn.h"

namespace sentinel {

using SensorId = std::uint32_t;

struct SensorRecord {
  SensorId sensor = 0;
  double time = 0.0;  // seconds since deployment start
  AttrVec attrs;      // <x_1, ..., x_n>

  bool operator==(const SensorRecord&) const = default;
};

/// Names of the attribute dimensions (e.g. {"temperature", "humidity"}).
/// Purely descriptive; algorithms operate on indices.
struct AttrSchema {
  std::vector<std::string> names;

  std::size_t dims() const { return names.size(); }
};

/// The (temperature, humidity) schema used throughout the paper's evaluation.
inline AttrSchema gdi_schema() { return AttrSchema{{"temperature", "humidity"}}; }

/// Full multimodal mote schema (paper section 3.1 lists pressure too).
inline AttrSchema gdi_schema3() {
  return AttrSchema{{"temperature", "humidity", "pressure"}};
}

constexpr double kSecondsPerMinute = 60.0;
constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerDay = 86400.0;

}  // namespace sentinel
