// Per-sensor health analytics over a raw trace -- the operations-side view
// the GDI field study [1] motivates ("errors originating in degraded sensor
// devices are a major cause of unreliability ... likely to manifest days
// before the sensor electronics actually fail"). Complements the pipeline:
// these are trace-level statistics (completeness, gaps, noise), not
// semantic anomaly detection.

#pragma once

#include <string>
#include <vector>

#include "trace/record.h"

namespace sentinel {

struct SensorHealth {
  SensorId sensor = 0;
  std::size_t records = 0;
  double first_time = 0.0;
  double last_time = 0.0;
  /// Delivered fraction of the records expected at `nominal_period` between
  /// first_time and last_time (1.0 = nothing missing).
  double completeness = 0.0;
  /// Largest gap between consecutive records, seconds.
  double max_gap = 0.0;
  /// Per-attribute mean and standard deviation over the whole trace.
  AttrVec mean;
  AttrVec stddev;
  /// Per-attribute high-frequency noise estimate: stddev of consecutive
  /// first differences divided by sqrt(2). Insensitive to slow environment
  /// drift; tracks the sensor's own measurement noise.
  AttrVec noise_sigma;
};

/// Compute health statistics per sensor. `nominal_period` is the expected
/// sampling interval in seconds (GDI: 300). Records need not be sorted.
std::vector<SensorHealth> analyze_health(std::vector<SensorRecord> records,
                                         double nominal_period);

/// One-line summary, suitable for an operations report.
std::string to_string(const SensorHealth& h);

}  // namespace sentinel
