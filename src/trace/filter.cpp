#include "trace/filter.h"

#include <algorithm>

namespace sentinel {

std::vector<SensorRecord> exclude_sensors(const std::vector<SensorRecord>& records,
                                          const std::set<SensorId>& excluded) {
  std::vector<SensorRecord> out;
  out.reserve(records.size());
  std::copy_if(records.begin(), records.end(), std::back_inserter(out),
               [&](const SensorRecord& r) { return excluded.find(r.sensor) == excluded.end(); });
  return out;
}

std::vector<SensorRecord> select_sensors(const std::vector<SensorRecord>& records,
                                         const std::set<SensorId>& included) {
  std::vector<SensorRecord> out;
  std::copy_if(records.begin(), records.end(), std::back_inserter(out),
               [&](const SensorRecord& r) { return included.find(r.sensor) != included.end(); });
  return out;
}

std::vector<SensorRecord> select_time_range(const std::vector<SensorRecord>& records,
                                            double t_begin, double t_end) {
  std::vector<SensorRecord> out;
  std::copy_if(records.begin(), records.end(), std::back_inserter(out),
               [&](const SensorRecord& r) { return r.time >= t_begin && r.time < t_end; });
  return out;
}

std::vector<SensorId> sensors_in(const std::vector<SensorRecord>& records) {
  std::set<SensorId> ids;
  for (const auto& r : records) ids.insert(r.sensor);
  return {ids.begin(), ids.end()};
}

}  // namespace sentinel
