// Versioned, length-prefixed binary trace format ("SNTRB1").
//
// Layout (all integers little-endian):
//   offset 0   magic       8 bytes   {0xB7,'S','N','T','R','B','1','\n'}
//   offset 8   dims        u32       attribute dimensionality n (>= 1)
//   offset 12  record_bytes u32      4 + 8 + 8*dims -- lets old readers skip
//                                    records of a newer, wider layout
//   offset 16  count       u64       number of records that follow
//   offset 24  records     count * record_bytes
//
// Each record: u32 sensor id, f64 time, f64 x_1..x_n (IEEE-754 bit patterns,
// so NaN/inf/subnormals round-trip exactly -- CSV cannot promise that).
// The writer backpatches `count` on close, so a truncated file is detected
// as corrupt rather than silently short.
//
// Rationale: the collector tier re-reads traces constantly (replay,
// re-training, benchmarking); fixed-width records decode by offset with no
// text parsing, and the reader hands out batches through the same
// TraceReader interface as CSV, so downstream is format-oblivious.

#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/record.h"
#include "trace/trace_reader.h"
#include "util/mmap_file.h"

namespace sentinel {

inline constexpr unsigned char kBinaryTraceMagic[8] = {0xB7, 'S', 'N', 'T', 'R', 'B', '1', '\n'};
inline constexpr std::size_t kBinaryTraceHeaderBytes = 24;

/// Bytes per record for a given dimensionality.
constexpr std::size_t binary_trace_record_bytes(std::size_t dims) {
  return 4 + 8 + 8 * dims;
}

/// Encode one record into `p` (binary_trace_record_bytes(rec.attrs.size())
/// writable bytes) / decode one record of `dims` attributes from `p`. The
/// SNTRB1 record payload is also the service wire format (src/service), so
/// the file writer/reader and the network frame codec share these -- a
/// record streamed over a socket is bit-identical to the same record read
/// from a file.
void encode_binary_record(unsigned char* p, const SensorRecord& rec);
void decode_binary_record(const unsigned char* p, std::size_t dims, SensorRecord& rec);

/// Streaming writer. Records must all share one dimensionality, fixed by the
/// first append (or by passing dims > 0 up front). close() (or the
/// destructor) backpatches the record count into the header; a file that was
/// never closed cleanly fails validation on read.
class BinaryTraceWriter {
 public:
  /// Throws std::runtime_error if the file cannot be created.
  explicit BinaryTraceWriter(const std::string& path, std::size_t dims = 0);
  ~BinaryTraceWriter();

  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  /// Throws std::runtime_error on dimensionality mismatch or write failure.
  void append(const SensorRecord& rec);
  void append(const std::vector<SensorRecord>& records);

  /// Flush, backpatch the header's record count, and close. Idempotent.
  /// Throws std::runtime_error on write failure.
  void close();

  std::size_t written() const { return count_; }

 private:
  void write_header();

  std::string path_;
  std::ofstream out_;
  std::size_t dims_ = 0;
  std::uint64_t count_ = 0;
  bool header_written_ = false;
  bool closed_ = false;
  std::vector<char> scratch_;  // one encoded record
};

/// Convenience: write a whole trace to `path` in one call.
void write_trace_binary_file(const std::string& path, const std::vector<SensorRecord>& records);

/// Batch reader for SNTRB1 files; mmap with buffered-stream fallback, same
/// interface as CsvTraceReader. Structural header problems (wrong magic,
/// impossible dims/record_bytes, dims mismatch) throw std::runtime_error
/// from the constructor with a message naming the file and the defect --
/// such a file was never a readable trace. A *truncated* file (header
/// promises more records than the bytes hold: a writer crash, a partial
/// upload) is data loss, not misuse: the reader serves every complete
/// record, then ends the stream with a non-fatal status() so the consumer
/// can count, attribute, and keep its other feeds alive.
class BinaryTraceReader final : public TraceReader {
 public:
  /// `expected_dims` = 0 accepts the file's dimensionality; nonzero must
  /// match or the constructor throws.
  explicit BinaryTraceReader(const std::string& path, std::size_t expected_dims = 0);

  std::size_t read_batch(std::vector<SensorRecord>& out, std::size_t max_records) override;
  /// O(1): fixed-width records make the resume offset a seek, not a scan.
  std::size_t skip_records(std::size_t n) override;
  util::Status status() const override { return status_; }
  std::size_t comment_lines() const override { return 0; }
  std::size_t dims() const override { return dims_; }

  /// Records the header promises (>= the count actually readable when the
  /// file is truncated).
  std::size_t total_records() const { return count_; }

 private:
  void parse_header(const unsigned char* header, std::size_t file_size, const std::string& path);
  /// Decode one record from `p` (record_bytes_ valid bytes) into `rec`.
  void decode(const unsigned char* p, SensorRecord& rec) const;

  std::optional<util::MappedFile> map_;
  std::ifstream in_;         // fallback stream, positioned after the header
  std::vector<char> chunk_;  // fallback read buffer (whole batches)

  std::size_t dims_ = 0;
  std::size_t record_bytes_ = 0;
  std::uint64_t count_ = 0;  // header's promise
  std::uint64_t avail_ = 0;  // records the file actually holds (<= count_)
  std::uint64_t next_ = 0;   // index of the next record to hand out
  util::Status status_;
};

}  // namespace sentinel
