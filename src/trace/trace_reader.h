// Streaming trace ingestion: readers that yield records in batches so a
// consumer (core/fleet.h's ingest, the CLI, benches) never materializes a
// whole trace -- peak memory is O(batch), which is what lets the collector
// tier keep up with continuous sensor streams (paper section 3.1's
// "on-the-fly" requirement) at file sizes that dwarf RAM.
//
// Implementations:
//  - CsvTraceReader: zero-copy CSV. Memory-maps the file (buffered-istream
//    fallback when mapping is unavailable), slices lines and fields as
//    string_views straight out of the mapping, parses numbers with
//    from_chars. No per-line or per-field allocation; the batch vector's
//    records keep their attr capacity across batches, so the steady-state
//    pump loop does not touch the allocator.
//  - BinaryTraceReader (trace/binary_trace.h): fixed-width records decoded
//    by offset; no parsing at all.
//
// open_trace_reader() auto-detects the format by magic bytes, so callers
// never branch on file extension.

#pragma once

#include <cstddef>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.h"
#include "trace/trace_io.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace sentinel {

class TraceReader {
 public:
  /// Default batch size for pump loops: large enough to amortize virtual
  /// dispatch and queue handoff, small enough to stay cache- and
  /// memory-friendly (~400 KiB of records at 2 attrs).
  static constexpr std::size_t kDefaultBatch = 4096;

  virtual ~TraceReader() = default;

  /// Fill `out` with up to `max_records` records, reusing its storage
  /// (records beyond the previous batch's size are value-constructed; attr
  /// vectors keep their capacity). Returns out.size(); 0 means end of
  /// stream -- clean or broken; check status() to tell which. Records
  /// arrive in file order.
  virtual std::size_t read_batch(std::vector<SensorRecord>& out, std::size_t max_records) = 0;

  /// Skip the next `n` records -- the resume path: a recovered fleet fast-
  /// forwards each region's trace to the record offset its checkpoint
  /// manifest names, then ingests the tail. Equivalent to reading and
  /// discarding `n` records (malformed/comment lines crossed while skipping
  /// are tallied as usual), so skip + read sees exactly the records a
  /// straight read would. Returns the count actually skipped; < n means the
  /// stream ended first. Binary readers seek in O(1) instead.
  virtual std::size_t skip_records(std::size_t n);

  /// Terminal stream condition. Ok while records are flowing and after a
  /// clean end of stream; non-ok (and sticky) once the source fails
  /// mid-stream -- a truncated binary payload, an I/O error. Data-dependent
  /// failure is a *value*, never an exception, so one rotten feed cannot
  /// abort a fleet sharing the process (constructors still throw on caller
  /// misuse: missing file, structurally invalid header).
  virtual util::Status status() const { return util::Status::ok(); }

  /// Malformed-line tally by cause (all zero for binary traces).
  virtual const MalformedCounts& malformed() const {
    static const MalformedCounts kNone;
    return kNone;
  }
  /// Lines counted as malformed so far (always 0 for binary traces).
  std::size_t malformed_lines() const { return malformed().total(); }
  /// Comment lines seen so far (always 0 for binary traces).
  virtual std::size_t comment_lines() const = 0;
  /// Attribute dimensionality; 0 until the first record has been read when
  /// the format does not declare it up front (CSV without expected_dims).
  virtual std::size_t dims() const = 0;
};

/// Zero-copy CSV reader. `expected_dims` as in read_trace: 0 = fixed by the
/// first record. Throws std::runtime_error if the file cannot be opened.
class CsvTraceReader final : public TraceReader {
 public:
  /// kAuto memory-maps when the platform allows and falls back to a
  /// buffered stream; kForceStream always takes the stream path. The two
  /// paths share parse_trace_line, so record sets and per-cause malformed
  /// counts are identical either way (test-enforced) -- kForceStream exists
  /// so that parity is provable on platforms where mmap succeeds.
  enum class Mode { kAuto, kForceStream };

  explicit CsvTraceReader(const std::string& path, std::size_t expected_dims = 0,
                          Mode mode = Mode::kAuto);

  std::size_t read_batch(std::vector<SensorRecord>& out, std::size_t max_records) override;
  util::Status status() const override { return status_; }
  const MalformedCounts& malformed() const override { return malformed_; }
  std::size_t comment_lines() const override { return comments_; }
  std::size_t dims() const override { return expected_dims_; }

  /// True when the file is memory-mapped (false = buffered-stream fallback).
  bool mapped() const { return map_.has_value(); }

 private:
  /// Next line as a view (without the trailing newline), or nullopt at end
  /// of stream. Stream mode: the view aliases the refill buffer and is valid
  /// until the next call.
  std::optional<std::string_view> next_line();
  bool refill();

  std::optional<util::MappedFile> map_;
  std::string_view rest_;  // unparsed remainder of the mapping

  std::ifstream in_;        // fallback stream
  std::vector<char> buf_;   // refill buffer; grows only for oversized lines
  std::size_t buf_pos_ = 0;
  std::size_t buf_end_ = 0;
  bool stream_eof_ = false;

  std::size_t expected_dims_ = 0;
  MalformedCounts malformed_;
  std::size_t comments_ = 0;
  util::Status status_;
  std::vector<std::string_view> fields_;  // per-line split scratch
};

/// Open a trace file for streaming, auto-detecting CSV vs binary by magic
/// bytes. Throws std::runtime_error if the file cannot be opened (or a
/// binary header is corrupt).
std::unique_ptr<TraceReader> open_trace_reader(const std::string& path,
                                               std::size_t expected_dims = 0);

}  // namespace sentinel
