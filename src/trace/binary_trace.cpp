#include "trace/binary_trace.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace sentinel {

namespace {

// Dimensionality sanity bound: wide enough for any real mote payload,
// narrow enough that a corrupt header cannot request a huge allocation.
constexpr std::size_t kMaxDims = 4096;

void put_u32le(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
}

void put_u64le(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
}

std::uint32_t get_u32le(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64le(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void put_f64le(unsigned char* p, double v) { put_u64le(p, std::bit_cast<std::uint64_t>(v)); }

double get_f64le(const unsigned char* p) { return std::bit_cast<double>(get_u64le(p)); }

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw std::runtime_error("binary trace: " + path + ": " + what);
}

}  // namespace

void encode_binary_record(unsigned char* p, const SensorRecord& rec) {
  put_u32le(p, rec.sensor);
  put_f64le(p + 4, rec.time);
  for (std::size_t i = 0; i < rec.attrs.size(); ++i) put_f64le(p + 12 + 8 * i, rec.attrs[i]);
}

void decode_binary_record(const unsigned char* p, std::size_t dims, SensorRecord& rec) {
  rec.sensor = get_u32le(p);
  rec.time = get_f64le(p + 4);
  rec.attrs.resize(dims);
  for (std::size_t i = 0; i < dims; ++i) rec.attrs[i] = get_f64le(p + 12 + 8 * i);
}

// ---------------------------------------------------------------------------
// BinaryTraceWriter

BinaryTraceWriter::BinaryTraceWriter(const std::string& path, std::size_t dims)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc), dims_(dims) {
  if (!out_) throw std::runtime_error("binary trace: cannot create " + path);
  if (dims_ > 0) write_header();
}

BinaryTraceWriter::~BinaryTraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an unclosed/failed file is detected on
    // read via the count/size consistency check.
  }
}

void BinaryTraceWriter::write_header() {
  if (dims_ == 0 || dims_ > kMaxDims) {
    throw std::runtime_error("binary trace: " + path_ + ": invalid dims " +
                             std::to_string(dims_));
  }
  unsigned char header[kBinaryTraceHeaderBytes] = {};
  std::memcpy(header, kBinaryTraceMagic, sizeof kBinaryTraceMagic);
  put_u32le(header + 8, static_cast<std::uint32_t>(dims_));
  put_u32le(header + 12, static_cast<std::uint32_t>(binary_trace_record_bytes(dims_)));
  put_u64le(header + 16, 0);  // count, backpatched in close()
  out_.write(reinterpret_cast<const char*>(header), sizeof header);
  if (!out_) throw std::runtime_error("binary trace: write failed for " + path_);
  header_written_ = true;
  scratch_.resize(binary_trace_record_bytes(dims_));
}

void BinaryTraceWriter::append(const SensorRecord& rec) {
  if (closed_) throw std::runtime_error("binary trace: append after close: " + path_);
  if (!header_written_) {
    dims_ = rec.attrs.size();
    write_header();
  }
  if (rec.attrs.size() != dims_) {
    throw std::runtime_error("binary trace: " + path_ + ": record has " +
                             std::to_string(rec.attrs.size()) + " attrs, trace has " +
                             std::to_string(dims_));
  }
  auto* p = reinterpret_cast<unsigned char*>(scratch_.data());
  encode_binary_record(p, rec);
  out_.write(scratch_.data(), static_cast<std::streamsize>(scratch_.size()));
  if (!out_) throw std::runtime_error("binary trace: write failed for " + path_);
  ++count_;
}

void BinaryTraceWriter::append(const std::vector<SensorRecord>& records) {
  for (const auto& rec : records) append(rec);
}

void BinaryTraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  if (!header_written_) {
    // Empty trace with unknown dims: header with dims = 1, count = 0, so the
    // file is still a valid (empty) trace rather than zero bytes.
    dims_ = 1;
    write_header();
  }
  unsigned char le[8];
  put_u64le(le, count_);
  out_.seekp(16);
  out_.write(reinterpret_cast<const char*>(le), sizeof le);
  out_.flush();
  if (!out_) throw std::runtime_error("binary trace: write failed for " + path_);
  out_.close();
}

void write_trace_binary_file(const std::string& path, const std::vector<SensorRecord>& records) {
  BinaryTraceWriter w(path);
  w.append(records);
  w.close();
}

// ---------------------------------------------------------------------------
// BinaryTraceReader

BinaryTraceReader::BinaryTraceReader(const std::string& path, std::size_t expected_dims) {
  map_ = util::MappedFile::map(path);
  std::size_t file_size = 0;
  unsigned char header[kBinaryTraceHeaderBytes];
  if (map_) {
    file_size = map_->size();
    if (file_size < kBinaryTraceHeaderBytes) corrupt(path, "truncated header");
    std::memcpy(header, map_->view().data(), sizeof header);
  } else {
    in_.open(path, std::ios::binary);
    if (!in_) throw std::runtime_error("binary trace: cannot open " + path);
    in_.seekg(0, std::ios::end);
    file_size = static_cast<std::size_t>(in_.tellg());
    in_.seekg(0);
    if (file_size < kBinaryTraceHeaderBytes) corrupt(path, "truncated header");
    in_.read(reinterpret_cast<char*>(header), sizeof header);
    if (in_.gcount() != static_cast<std::streamsize>(sizeof header)) {
      corrupt(path, "truncated header");
    }
  }
  parse_header(header, file_size, path);
  if (expected_dims != 0 && dims_ != expected_dims) {
    corrupt(path, "has " + std::to_string(dims_) + " attribute dims, expected " +
                      std::to_string(expected_dims));
  }
}

void BinaryTraceReader::parse_header(const unsigned char* header, std::size_t file_size,
                                     const std::string& path) {
  if (std::memcmp(header, kBinaryTraceMagic, sizeof kBinaryTraceMagic) != 0) {
    corrupt(path, "bad magic (not an SNTRB1 trace)");
  }
  dims_ = get_u32le(header + 8);
  record_bytes_ = get_u32le(header + 12);
  count_ = get_u64le(header + 16);
  if (dims_ == 0 || dims_ > kMaxDims) corrupt(path, "invalid dims " + std::to_string(dims_));
  // record_bytes may exceed the v1 layout (a future writer appending fields);
  // it may never be smaller, or records would overlap the fields we decode.
  if (record_bytes_ < binary_trace_record_bytes(dims_)) {
    corrupt(path, "record size " + std::to_string(record_bytes_) + " too small for " +
                      std::to_string(dims_) + " dims");
  }
  // Truncation is deferred, not thrown: serve the complete records, then
  // surface the shortfall through status(). The consumer (fleet ingest)
  // quarantines the feed; the partial prefix is still usable for forensics.
  const std::uint64_t payload = file_size - kBinaryTraceHeaderBytes;
  avail_ = count_;
  if (count_ > payload / record_bytes_) {
    avail_ = payload / record_bytes_;
  }
}

void BinaryTraceReader::decode(const unsigned char* p, SensorRecord& rec) const {
  decode_binary_record(p, dims_, rec);
}

std::size_t BinaryTraceReader::skip_records(std::size_t n) {
  const std::uint64_t remaining = avail_ - next_;
  const std::uint64_t take =
      remaining < n ? remaining : static_cast<std::uint64_t>(n);
  if (take == 0) return 0;
  if (!map_) {
    in_.seekg(static_cast<std::streamoff>(take * record_bytes_), std::ios::cur);
    if (!in_) {
      // Seek past a shrunken file: end the stream like a mid-batch failure.
      avail_ = next_;
      status_ = util::Status(util::StatusCode::kDataLoss,
                             "binary trace: unexpected end of stream");
      return 0;
    }
  }
  next_ += take;
  // Skipping exactly to the torn edge of a truncated file surfaces the same
  // sticky status a straight read would.
  if (next_ == avail_ && avail_ < count_ && status_.is_ok()) {
    status_ = util::Status(
        util::StatusCode::kDataLoss,
        "binary trace: truncated: header promises " + std::to_string(count_) +
            " records, file holds " + std::to_string(avail_));
  }
  return static_cast<std::size_t>(take);
}

std::size_t BinaryTraceReader::read_batch(std::vector<SensorRecord>& out,
                                          std::size_t max_records) {
  const std::uint64_t remaining = avail_ - next_;
  std::size_t n = static_cast<std::size_t>(
      remaining < max_records ? remaining : static_cast<std::uint64_t>(max_records));
  if (out.size() < n) out.resize(n);
  if (map_) {
    const auto* base = reinterpret_cast<const unsigned char*>(map_->view().data()) +
                       kBinaryTraceHeaderBytes + next_ * record_bytes_;
    for (std::size_t i = 0; i < n; ++i) decode(base + i * record_bytes_, out[i]);
  } else {
    chunk_.resize(n * record_bytes_);
    in_.read(chunk_.data(), static_cast<std::streamsize>(chunk_.size()));
    const auto got_records =
        static_cast<std::size_t>(in_.gcount()) / record_bytes_;  // whole records only
    if (got_records < n) {
      // Mid-batch stream failure (file shrank under us, device error):
      // serve the complete records we got, end the stream with a status.
      n = got_records;
      avail_ = next_ + n;
      status_ = util::Status(util::StatusCode::kDataLoss,
                             "binary trace: unexpected end of stream");
    }
    const auto* base = reinterpret_cast<const unsigned char*>(chunk_.data());
    for (std::size_t i = 0; i < n; ++i) decode(base + i * record_bytes_, out[i]);
  }
  next_ += n;
  out.resize(n);
  if (next_ == avail_ && avail_ < count_ && status_.is_ok()) {
    status_ = util::Status(
        util::StatusCode::kDataLoss,
        "binary trace: truncated: header promises " + std::to_string(count_) +
            " records, file holds " + std::to_string(avail_));
  }
  return n;
}

}  // namespace sentinel
