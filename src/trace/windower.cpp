#include "trace/windower.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/serialize.h"

namespace sentinel {

AttrVec ObservationSet::overall_mean() const {
  if (raw.empty()) throw std::logic_error("ObservationSet::overall_mean on empty window");
  if (!cached_mean.empty()) return cached_mean;
  return vecn::mean(raw);
}

std::vector<std::pair<SensorId, AttrVec>> ObservationSet::representatives() const {
  std::vector<std::pair<SensorId, AttrVec>> out;
  out.reserve(per_sensor.size());
  for (const auto& [id, v] : per_sensor) out.emplace_back(id, v);
  return out;
}

Windower::Windower(double window_seconds) : window_seconds_(window_seconds) {
  if (!(window_seconds > 0.0)) throw std::invalid_argument("Windower: window must be positive");
}

void Windower::open_window(std::size_t index) {
  current_index_ = index;
  pending_.clear();
}

ObservationSet Windower::finalize_current() {
  ObservationSet set;
  set.window_index = current_index_;
  set.window_start = window_seconds_ * static_cast<double>(current_index_ - 1);
  set.window_end = window_seconds_ * static_cast<double>(current_index_);

  // Group pending records per sensor and compute representatives.
  std::map<SensorId, std::vector<AttrVec>> by_sensor;
  for (auto& rec : pending_) {
    set.raw.push_back(rec.attrs);
    by_sensor[rec.sensor].push_back(std::move(rec.attrs));
  }
  set.rep_sensors.reserve(by_sensor.size());
  set.rep_points.reserve(by_sensor.size());
  set.rep_sums.reserve(by_sensor.size());
  for (auto& [id, samples] : by_sensor) {
    auto rep = vecn::mean(samples);
    set.per_sensor.emplace(id, rep);
    set.rep_sensors.push_back(id);
    set.rep_sums.push_back(vecn::scalar_sum(rep));
    if (set.rep_total.empty()) set.rep_total.assign(rep.size(), 0.0);
    for (std::size_t a = 0; a < set.rep_total.size() && a < rep.size(); ++a) {
      set.rep_total[a] += rep[a];
    }
    set.rep_points.push_back(std::move(rep));
  }
  if (!set.raw.empty()) vecn::mean_into(set.raw, set.cached_mean);
  return set;
}

std::size_t Windower::index_for(double time) {
  // Window i (1-based) covers [w*(i-1), w*i); the paper's eq. (1) is
  // inclusive on both ends, but half-open intervals avoid double counting.
  // Degenerate times need defined handling before the cast -- converting a
  // negative or out-of-range double to size_t is undefined behavior (the
  // ASan+UBSan CI job checks this path): times before deployment start (and
  // NaN) clamp into window 1, astronomically large times clamp to the
  // largest index the cast can represent. Each clamp is counted so the
  // pipeline can attribute degenerate timestamps instead of absorbing them
  // silently.
  const double idx = std::floor(time / window_seconds_);
  if (!(idx >= 0.0)) {
    ++clamped_records_;
    return 1;
  }
  constexpr double kMaxIndex = 9.0e18;  // < 2^63: cast below is defined
  if (idx >= kMaxIndex) {
    ++clamped_records_;
    return static_cast<std::size_t>(kMaxIndex);
  }
  return static_cast<std::size_t>(idx) + 1;
}

std::vector<ObservationSet> Windower::add(const SensorRecord& rec) {
  std::vector<ObservationSet> completed;
  add(rec, [&completed](ObservationSet&& w) { completed.push_back(std::move(w)); });
  return completed;
}

std::optional<ObservationSet> Windower::flush() {
  if (current_index_ == 0 || pending_.empty()) return std::nullopt;
  auto set = finalize_current();
  open_window(current_index_);  // stay on the same window, now empty
  return set;
}

void Windower::save(serialize::Writer& w) const {
  serialize::tag(w, "windower");
  serialize::put(w, current_index_);
  serialize::put(w, late_records_);
  serialize::put(w, clamped_records_);
  serialize::put(w, pending_.size());
  for (const SensorRecord& rec : pending_) {
    serialize::put(w, rec.sensor);
    serialize::put(w, rec.time);
    serialize::put_vector(w, rec.attrs);
  }
}

void Windower::load(serialize::Reader& r) {
  serialize::expect(r, "windower");
  current_index_ = serialize::get<std::size_t>(r);
  late_records_ = serialize::get<std::size_t>(r);
  clamped_records_ = serialize::get<std::size_t>(r);
  const auto n = serialize::get<std::size_t>(r);
  if (n > (1u << 26)) throw std::runtime_error("checkpoint: implausible pending-record count");
  pending_.clear();
  pending_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SensorRecord rec;
    rec.sensor = serialize::get<SensorId>(r);
    rec.time = serialize::get<double>(r);
    rec.attrs = serialize::get_vector<double>(r);
    pending_.push_back(std::move(rec));
  }
}

std::vector<ObservationSet> window_trace(std::vector<SensorRecord> records,
                                         double window_seconds) {
  std::stable_sort(records.begin(), records.end(),
                   [](const SensorRecord& a, const SensorRecord& b) { return a.time < b.time; });
  Windower w(window_seconds);
  std::vector<ObservationSet> out;
  for (const auto& rec : records) {
    auto done = w.add(rec);
    out.insert(out.end(), std::make_move_iterator(done.begin()),
               std::make_move_iterator(done.end()));
  }
  if (auto last = w.flush()) out.push_back(std::move(*last));
  return out;
}

}  // namespace sentinel
