// Columnar windower implementation.
//
// Bit-identity contract: every value in a finalized ObservationSet must equal,
// bit for bit, what the legacy map-based finalization produced --
//
//   std::map<SensorId, std::vector<AttrVec>> by_sensor;   // group samples
//   for each sensor ascending: rep = vecn::mean(samples); // accumulate, *1/n
//   rep_sums.push_back(vecn::scalar_sum(rep));
//   rep_total += rep (sized from the first rep, min-truncated);
//   vecn::mean_into(raw, cached_mean);                    // all records, *1/n
//
// The columnar path reproduces each accumulation order exactly:
//  * A slot's running-sum row receives that sensor's samples in arrival
//    order, element-wise from +0.0 -- the same add sequence vecn::mean
//    performs on the grouped samples (grouping preserves arrival order per
//    sensor). The representative is sums[i] * (1.0/count), the same single
//    rounding vecn::mean's `x *= inv` applies to the same sum.
//  * The whole-window total receives every record in arrival order,
//    element-wise -- vecn::mean_into's order over `raw` -- and cached_mean
//    is total[i] * (1.0/count), matching its `*= inv`.
//  * Reps are emitted in ascending sensor order (std::sort over touched
//    slots), the order std::map iteration gave the legacy loop; rep_sums /
//    rep_total are computed from the finished reps with the identical
//    helper and truncation guard.
// The deferred adds run through kern accum_rows/sum_rows, which are
// element-wise with rows processed in gather order at every level, so the
// kernel batching changes nothing about the order of additions.
//
// Dimension-mismatch errors also mirror the legacy path: a sensor whose
// samples disagree in width throws vecn::check_same_size's message for the
// lowest such sensor id (legacy: vecn::mean over the first conflicted group),
// else a window whose records disagree throws it for the first record that
// differs from the window's first (legacy: vecn::mean_into over raw). In
// both cases the window being finalized is discarded; unlike the legacy
// code, which left moved-from remnants behind, the columnar windower resets
// to a clean empty window.

#include "trace/windower.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/kernels.h"
#include "util/serialize.h"

namespace sentinel {

AttrVec ObservationSet::overall_mean() const {
  if (!cached_mean.empty()) return cached_mean;
  if (raw.empty()) throw std::logic_error("ObservationSet::overall_mean on empty window");
  return vecn::mean(raw);
}

std::vector<std::pair<SensorId, AttrVec>> ObservationSet::representatives() const {
  std::vector<std::pair<SensorId, AttrVec>> out;
  if (!rep_sensors.empty()) {
    out.reserve(rep_sensors.size());
    for (std::size_t j = 0; j < rep_sensors.size(); ++j) {
      out.emplace_back(rep_sensors[j], rep_points[j]);
    }
    return out;
  }
  out.reserve(per_sensor.size());
  for (const auto& [id, v] : per_sensor) out.emplace_back(id, v);
  return out;
}

namespace {

// Fibonacci-style mix so consecutive sensor ids spread across the table.
inline std::size_t hash_id(SensorId id) {
  return static_cast<std::size_t>(id) * 0x9E3779B97F4A7C15ull;
}

[[noreturn]] void throw_dims_mismatch(std::uint32_t have, std::uint32_t got) {
  throw std::invalid_argument("AttrVec dimension mismatch: " + std::to_string(have) + " vs " +
                              std::to_string(got));
}

}  // namespace

Windower::Windower(const WindowerConfig& cfg)
    : window_seconds_(cfg.window_seconds), keep_raw_(cfg.keep_raw) {
  if (!(window_seconds_ > 0.0)) throw std::invalid_argument("Windower: window must be positive");
  ht_.assign(64, 0);
}

void Windower::open_window(std::size_t index) { current_index_ = index; }

std::size_t Windower::index_for(double time) {
  // Window i (1-based) covers [w*(i-1), w*i); the paper's eq. (1) is
  // inclusive on both ends, but half-open intervals avoid double counting.
  // Degenerate times need defined handling before the cast -- converting a
  // negative or out-of-range double to size_t is undefined behavior (the
  // ASan+UBSan CI job checks this path): times before deployment start (and
  // NaN) clamp into window 1, astronomically large times clamp to the
  // largest index the cast can represent. Each clamp is counted so the
  // pipeline can attribute degenerate timestamps instead of absorbing them
  // silently.
  const double idx = std::floor(time / window_seconds_);
  if (!(idx >= 0.0)) {
    ++clamped_records_;
    return 1;
  }
  constexpr double kMaxIndex = 9.0e18;  // < 2^63: cast below is defined
  if (idx >= kMaxIndex) {
    ++clamped_records_;
    return static_cast<std::size_t>(kMaxIndex);
  }
  return static_cast<std::size_t>(idx) + 1;
}

std::uint32_t Windower::slot_for(SensorId id) {
  std::size_t mask = ht_.size() - 1;
  std::size_t h = hash_id(id) & mask;
  while (ht_[h] != 0) {
    const std::uint32_t s = ht_[h] - 1;
    if (slot_ids_[s] == id) return s;
    h = (h + 1) & mask;
  }
  // First sight of this sensor: append a slot (the only allocating event on
  // the accumulate path, amortized to zero once the fleet's id set is seen).
  const auto s = static_cast<std::uint32_t>(slot_ids_.size());
  slot_ids_.push_back(id);
  slot_counts_.push_back(0);
  slot_dims_.push_back(kDimsUnset);
  slot_conflict_.push_back(kDimsUnset);
  sums_.resize(sums_.size() + stride_, 0.0);
  ht_[h] = s + 1;
  if ((slot_ids_.size() + 1) * 4 > ht_.size() * 3) rehash();
  return s;
}

void Windower::rehash() {
  std::vector<std::uint32_t> bigger(ht_.size() * 2, 0);
  const std::size_t mask = bigger.size() - 1;
  for (std::uint32_t s = 0; s < slot_ids_.size(); ++s) {
    std::size_t h = hash_id(slot_ids_[s]) & mask;
    while (bigger[h] != 0) h = (h + 1) & mask;
    bigger[h] = s + 1;
  }
  ht_.swap(bigger);
}

void Windower::grow_stride(std::size_t dims) {
  // A record wider than any seen before: re-lay the sums arena at the new
  // padded stride. Gathered offsets were computed against the old stride, so
  // they must land first.
  flush_slot_gather();
  const std::size_t new_stride = kern::padded(dims);
  std::vector<double> wider(slot_ids_.size() * new_stride, 0.0);
  for (std::size_t s = 0; s < slot_ids_.size(); ++s) {
    const double* src = sums_.data() + s * stride_;
    double* dst = wider.data() + s * new_stride;
    for (std::size_t i = 0; i < stride_; ++i) dst[i] = src[i];
  }
  sums_.swap(wider);
  stride_ = new_stride;
}

void Windower::flush_slot_gather() {
  if (g_count_ == 0) return;
  kern::k().accum_rows(sums_.data(), g_offs_.data(), g_srcs_.data(), g_count_, g_dims_);
  g_count_ = 0;
}

void Windower::flush_total_gather() {
  if (gt_count_ == 0) return;
  kern::k().sum_rows(total_.data(), gt_srcs_.data(), gt_count_, window_dims_);
  gt_count_ = 0;
}

void Windower::accumulate(const SensorRecord& rec) {
  if (pending_count_ == pending_log_.size()) pending_log_.emplace_back();
  SensorRecord& e = pending_log_[pending_count_];
  e.sensor = rec.sensor;
  e.time = rec.time;
  e.attrs.assign(rec.attrs.begin(), rec.attrs.end());
  ++pending_count_;
  accumulate_entry(e);
}

void Windower::accumulate_entry(const SensorRecord& e) {
  const auto dims = static_cast<std::uint32_t>(e.attrs.size());
  const double* src = e.attrs.data();

  // Whole-window total: every record whose width matches the window's first.
  if (window_dims_ == kDimsUnset) {
    window_dims_ = dims;
    total_.assign(dims, 0.0);
  }
  if (dims == window_dims_) {
    if (gt_count_ == kGatherCap) flush_total_gather();
    gt_srcs_[gt_count_++] = src;
  } else if (window_conflict_ == kDimsUnset) {
    window_conflict_ = dims;
  }

  // Per-sensor running sum.
  if (static_cast<std::size_t>(dims) > stride_) grow_stride(dims);
  const std::uint32_t slot = slot_for(e.sensor);
  if (slot_counts_[slot] == 0) {
    touched_.push_back(slot);
    slot_dims_[slot] = dims;
  }
  ++slot_counts_[slot];
  if (dims == slot_dims_[slot]) {
    if (g_count_ == kGatherCap || (g_count_ != 0 && g_dims_ != dims)) flush_slot_gather();
    if (g_count_ == 0) g_dims_ = dims;
    g_offs_[g_count_] = static_cast<std::size_t>(slot) * stride_;
    g_srcs_[g_count_] = src;
    ++g_count_;
  } else if (slot_conflict_[slot] == kDimsUnset) {
    slot_conflict_[slot] = dims;
  }
}

void Windower::reset_window_state() {
  for (const std::uint32_t s : touched_) {
    slot_counts_[s] = 0;
    slot_dims_[s] = kDimsUnset;
    slot_conflict_[s] = kDimsUnset;
    double* row = sums_.data() + static_cast<std::size_t>(s) * stride_;
    std::fill(row, row + stride_, 0.0);
  }
  touched_.clear();
  pending_count_ = 0;
  window_dims_ = kDimsUnset;
  window_conflict_ = kDimsUnset;
  g_count_ = 0;
  gt_count_ = 0;
}

void Windower::finalize_into(ObservationSet& out) {
  flush_slot_gather();
  flush_total_gather();

  out.window_index = current_index_;
  out.window_start = window_seconds_ * static_cast<double>(current_index_ - 1);
  out.window_end = window_seconds_ * static_cast<double>(current_index_);
  out.per_sensor.clear();
  out.cached_mean.clear();
  out.rep_sensors.clear();
  out.rep_sums.clear();
  out.rep_total.clear();
  if (!keep_raw_) out.raw.clear();
  // raw / rep_points are recycled element-wise below (clear() would free
  // every inner buffer and reintroduce per-window allocations).

  // Ascending sensor order -- the order the legacy std::map iteration gave.
  std::sort(touched_.begin(), touched_.end(),
            [&](std::uint32_t a, std::uint32_t b) { return slot_ids_[a] < slot_ids_[b]; });

  // Legacy throw order: the lowest sensor id whose own samples disagree in
  // width throws first (vecn::mean over that group)...
  for (const std::uint32_t s : touched_) {
    if (slot_conflict_[s] != kDimsUnset) {
      const std::uint32_t have = slot_dims_[s];
      const std::uint32_t got = slot_conflict_[s];
      reset_window_state();
      throw_dims_mismatch(have, got);
    }
  }

  const std::size_t n_sensors = touched_.size();
  if (out.rep_points.size() > n_sensors) out.rep_points.resize(n_sensors);
  out.rep_sensors.reserve(n_sensors);
  out.rep_sums.reserve(n_sensors);
  for (std::size_t j = 0; j < n_sensors; ++j) {
    const std::uint32_t s = touched_[j];
    const double* row = sums_.data() + static_cast<std::size_t>(s) * stride_;
    const std::size_t dims = slot_dims_[s];
    const double inv = 1.0 / static_cast<double>(slot_counts_[s]);
    if (j == out.rep_points.size()) out.rep_points.emplace_back();
    AttrVec& rep = out.rep_points[j];
    rep.resize(dims);
    for (std::size_t i = 0; i < dims; ++i) rep[i] = row[i] * inv;
    out.rep_sensors.push_back(slot_ids_[s]);
    if (keep_raw_) out.per_sensor.emplace(slot_ids_[s], rep);
    out.rep_sums.push_back(vecn::scalar_sum(rep));
    if (out.rep_total.empty()) out.rep_total.assign(rep.size(), 0.0);
    for (std::size_t a = 0; a < out.rep_total.size() && a < rep.size(); ++a) {
      out.rep_total[a] += rep[a];
    }
  }

  if (pending_count_ > 0) {
    // ...then a window whose records disagree with its first record's width
    // (vecn::mean_into over raw).
    if (window_conflict_ != kDimsUnset) {
      const std::uint32_t have = window_dims_;
      const std::uint32_t got = window_conflict_;
      reset_window_state();
      throw_dims_mismatch(have, got);
    }
    const double inv = 1.0 / static_cast<double>(pending_count_);
    out.cached_mean.resize(window_dims_);
    for (std::size_t i = 0; i < window_dims_; ++i) out.cached_mean[i] = total_[i] * inv;
  }

  if (keep_raw_) {
    if (out.raw.size() > pending_count_) out.raw.resize(pending_count_);
    for (std::size_t i = 0; i < pending_count_; ++i) {
      if (i == out.raw.size()) out.raw.emplace_back();
      const AttrVec& a = pending_log_[i].attrs;
      out.raw[i].assign(a.begin(), a.end());
    }
  }

  reset_window_state();
}

std::vector<ObservationSet> Windower::add(const SensorRecord& rec) {
  std::vector<ObservationSet> completed;
  add(rec, [&completed](ObservationSet&& w) { completed.push_back(std::move(w)); });
  return completed;
}

std::optional<ObservationSet> Windower::flush() {
  if (current_index_ == 0 || pending_count_ == 0) return std::nullopt;
  ObservationSet set;
  finalize_into(set);  // resets to an empty window at the same index
  return set;
}

void Windower::save(serialize::Writer& w) const {
  serialize::tag(w, "windower");
  serialize::put(w, current_index_);
  serialize::put(w, late_records_);
  serialize::put(w, clamped_records_);
  serialize::put(w, pending_count_);
  for (std::size_t i = 0; i < pending_count_; ++i) {
    const SensorRecord& rec = pending_log_[i];
    serialize::put(w, rec.sensor);
    serialize::put(w, rec.time);
    serialize::put_vector(w, rec.attrs);
  }
}

void Windower::load(serialize::Reader& r) {
  serialize::expect(r, "windower");
  current_index_ = serialize::get<std::size_t>(r);
  late_records_ = serialize::get<std::size_t>(r);
  clamped_records_ = serialize::get<std::size_t>(r);
  const auto n = serialize::get<std::size_t>(r);
  if (n > (1u << 26)) throw std::runtime_error("checkpoint: implausible pending-record count");
  reset_window_state();
  pending_log_.clear();
  pending_log_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SensorRecord rec;
    rec.sensor = serialize::get<SensorId>(r);
    rec.time = serialize::get<double>(r);
    rec.attrs = serialize::get_vector<double>(r);
    pending_log_.push_back(std::move(rec));
  }
  // Rebuild the columnar accumulators by replaying the log (the counters
  // above were restored from the stream; replay must not re-count).
  pending_count_ = n;
  for (std::size_t i = 0; i < n; ++i) accumulate_entry(pending_log_[i]);
  flush_slot_gather();
  flush_total_gather();
}

std::vector<ObservationSet> window_trace(std::vector<SensorRecord> records,
                                         double window_seconds) {
  std::stable_sort(records.begin(), records.end(),
                   [](const SensorRecord& a, const SensorRecord& b) { return a.time < b.time; });
  Windower w(window_seconds);
  std::vector<ObservationSet> out;
  for (const auto& rec : records) {
    auto done = w.add(rec);
    out.insert(out.end(), std::make_move_iterator(done.begin()),
               std::make_move_iterator(done.end()));
  }
  if (auto last = w.flush()) out.push_back(std::move(*last));
  return out;
}

}  // namespace sentinel
