#include "trace/trace_io.h"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "trace/trace_reader.h"
#include "util/csv.h"

namespace sentinel {

std::optional<SensorId> to_sensor_id(double v) {
  // The upper bound must be checked on the double side: SensorId's max + 1 is
  // exactly representable, the cast of anything >= it (or of NaN) is UB.
  constexpr double kLimit = 4294967296.0;  // 2^32
  static_assert(sizeof(SensorId) == 4);
  if (!(v >= 0.0) || v >= kLimit) return std::nullopt;
  const auto id = static_cast<SensorId>(v);
  if (static_cast<double>(id) != v) return std::nullopt;  // fractional
  return id;
}

namespace {

// Fused single-scan parse of the dominant line shape:
//   digits ',' number ',' number [',' number ...]
// with no whitespace, exponents, or long mantissas. Numbers take the same
// Clinger fast path as csv::parse_double (<= 15 significant digits, so one
// division is correctly rounded) -- a line this accepts produces the exact
// bits the general grammar would. Any deviation returns false and the caller
// re-parses through the general path, so accept/reject semantics never
// change; this only removes the per-field split + trim + call overhead from
// the common case.
bool parse_simple_line(std::string_view line, std::size_t dims, SensorRecord& rec) {
  const char* p = line.data();
  const char* const end = p + line.size();

  // Sensor id: plain decimal digits, range-checked against uint32.
  std::uint64_t id = 0;
  const char* const id_start = p;
  while (p != end && *p >= '0' && *p <= '9') {
    id = id * 10 + static_cast<std::uint64_t>(*p - '0');
    if (id > 0xFFFFFFFFull) return false;
    ++p;
  }
  if (p == id_start || p == end || *p != ',') return false;
  ++p;

  static constexpr double kPow10[] = {1e0, 1e1, 1e2,  1e3,  1e4,  1e5,  1e6,  1e7,
                                      1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15};
  const auto parse_field = [&p, end](double& out_v) {
    bool neg = false;
    if (p != end && *p == '-') {
      neg = true;
      ++p;
    }
    std::uint64_t mant = 0;
    int digits = 0;
    int frac_digits = 0;
    bool seen_point = false;
    for (; p != end; ++p) {
      const char c = *p;
      if (c >= '0' && c <= '9') {
        mant = mant * 10 + static_cast<std::uint64_t>(c - '0');
        ++digits;
        if (seen_point) ++frac_digits;
      } else if (c == '.' && !seen_point) {
        seen_point = true;
      } else {
        break;
      }
    }
    if (digits == 0 || digits > 15 || (seen_point && frac_digits == 0)) return false;
    const double v = static_cast<double>(mant) / kPow10[frac_digits];
    out_v = neg ? -v : v;
    return true;
  };

  double time = 0.0;
  if (!parse_field(time) || p == end || *p != ',') return false;
  ++p;

  rec.attrs.resize(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    if (!parse_field(rec.attrs[i])) return false;
    if (i + 1 < dims) {
      if (p == end || *p != ',') return false;
      ++p;
    }
  }
  if (p != end) return false;  // trailing garbage / extra fields: re-check slowly

  rec.sensor = static_cast<SensorId>(id);
  rec.time = time;
  return true;
}

}  // namespace

std::string to_string(const MalformedCounts& m) {
  return std::to_string(m.total()) + " malformed (field-count " +
         std::to_string(m.bad_field_count) + ", dims " + std::to_string(m.dims_mismatch) +
         ", sensor-id " + std::to_string(m.bad_sensor_id) + ", number " +
         std::to_string(m.bad_number) + ")";
}

LineParse parse_trace_line(std::string_view line, std::size_t& expected_dims, SensorRecord& rec,
                           std::vector<std::string_view>& fields) {
  if (line.empty()) return LineParse::kBlank;
  if (line.front() == '#') return LineParse::kComment;
  if (expected_dims != 0 && parse_simple_line(line, expected_dims, rec)) {
    return LineParse::kRecord;
  }
  csv::split_into(line, fields);
  if (fields.size() < 3) return LineParse::kBadFieldCount;
  const std::size_t dims = fields.size() - 2;
  if (expected_dims == 0) {
    expected_dims = dims;
  }
  if (dims != expected_dims) return LineParse::kDimsMismatch;
  // Sensor-id fast path: the field is almost always a plain decimal integer,
  // which from_chars validates and range-checks in one step. Anything else
  // ("7.0", "1e2", out-of-range) takes the double route and the checked
  // conversion -- same accept/reject set, no double-to-int edge cases.
  SensorId sensor = 0;
  const auto [id_ptr, id_ec] =
      std::from_chars(fields[0].data(), fields[0].data() + fields[0].size(), sensor);
  if (id_ec != std::errc{} || id_ptr != fields[0].data() + fields[0].size()) {
    const auto id = csv::parse_double(fields[0]);
    if (!id) return LineParse::kBadSensorId;
    const auto checked = to_sensor_id(*id);
    if (!checked) return LineParse::kBadSensorId;
    sensor = *checked;
  }
  const auto t = csv::parse_double(fields[1]);
  if (!t) return LineParse::kBadNumber;
  rec.sensor = sensor;
  rec.time = *t;
  rec.attrs.resize(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    const auto v = csv::parse_double(fields[i + 2]);
    if (!v) return LineParse::kBadNumber;
    rec.attrs[i] = *v;
  }
  return LineParse::kRecord;
}

TraceReadResult read_trace(std::istream& in, std::size_t expected_dims) {
  TraceReadResult result;
  std::string line;
  std::vector<std::string_view> fields;
  SensorRecord rec;
  while (std::getline(in, line)) {
    const LineParse p = parse_trace_line(line, expected_dims, rec, fields);
    switch (p) {
      case LineParse::kRecord: result.records.push_back(rec); break;
      case LineParse::kComment: ++result.comment_lines; break;
      case LineParse::kBlank: break;
      default: result.malformed.count(p); break;
    }
  }
  result.malformed_lines = result.malformed.total();
  return result;
}

TraceReadResult read_trace_file(const std::string& path, std::size_t expected_dims) {
  const auto reader = open_trace_reader(path, expected_dims);
  TraceReadResult result;
  std::vector<SensorRecord> batch;
  while (reader->read_batch(batch, TraceReader::kDefaultBatch) > 0) {
    result.records.insert(result.records.end(), batch.begin(), batch.end());
  }
  result.malformed = reader->malformed();
  result.malformed_lines = result.malformed.total();
  result.comment_lines = reader->comment_lines();
  result.status = reader->status();
  return result;
}

void write_trace(std::ostream& out, const std::vector<SensorRecord>& records,
                 const AttrSchema* schema) {
  if (schema != nullptr) {
    out << "# sensor,time";
    for (const auto& n : schema->names) out << ',' << n;
    out << '\n';
  }
  for (const auto& rec : records) {
    out << rec.sensor << ',' << csv::format(rec.time, 3);
    for (const double x : rec.attrs) out << ',' << csv::format(x, 6);
    out << '\n';
  }
}

void write_trace_file(const std::string& path, const std::vector<SensorRecord>& records,
                      const AttrSchema* schema) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_trace_file: cannot open " + path);
  write_trace(out, records, schema);
  if (!out) throw std::runtime_error("write_trace_file: write failed for " + path);
}

}  // namespace sentinel
