#include "trace/trace_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/csv.h"

namespace sentinel {

TraceReadResult read_trace(std::istream& in, std::size_t expected_dims) {
  TraceReadResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.front() == '#') {
      ++result.comment_lines;
      continue;
    }
    const auto fields = csv::split(line);
    if (fields.size() < 3) {
      ++result.malformed_lines;
      continue;
    }
    const std::size_t dims = fields.size() - 2;
    if (expected_dims == 0) {
      expected_dims = dims;
    }
    if (dims != expected_dims) {
      ++result.malformed_lines;
      continue;
    }
    const auto id = csv::parse_double(fields[0]);
    const auto t = csv::parse_double(fields[1]);
    if (!id || !t || *id < 0.0 || *id != static_cast<double>(static_cast<SensorId>(*id))) {
      ++result.malformed_lines;
      continue;
    }
    SensorRecord rec;
    rec.sensor = static_cast<SensorId>(*id);
    rec.time = *t;
    rec.attrs.reserve(dims);
    bool ok = true;
    for (std::size_t i = 2; i < fields.size(); ++i) {
      const auto v = csv::parse_double(fields[i]);
      if (!v) {
        ok = false;
        break;
      }
      rec.attrs.push_back(*v);
    }
    if (!ok) {
      ++result.malformed_lines;
      continue;
    }
    result.records.push_back(std::move(rec));
  }
  return result;
}

TraceReadResult read_trace_file(const std::string& path, std::size_t expected_dims) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_trace_file: cannot open " + path);
  return read_trace(in, expected_dims);
}

void write_trace(std::ostream& out, const std::vector<SensorRecord>& records,
                 const AttrSchema* schema) {
  if (schema != nullptr) {
    out << "# sensor,time";
    for (const auto& n : schema->names) out << ',' << n;
    out << '\n';
  }
  for (const auto& rec : records) {
    out << rec.sensor << ',' << csv::format(rec.time, 3);
    for (const double x : rec.attrs) out << ',' << csv::format(x, 6);
    out << '\n';
  }
}

void write_trace_file(const std::string& path, const std::vector<SensorRecord>& records,
                      const AttrSchema* schema) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_trace_file: cannot open " + path);
  write_trace(out, records, schema);
  if (!out) throw std::runtime_error("write_trace_file: write failed for " + path);
}

}  // namespace sentinel
