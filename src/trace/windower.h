// Time windowing (paper section 3.1, eq. (1)).
//
// The collector node partitions incoming observations into windows of
// duration w: O_i = { p | <t,p> in O  and  w*(i-1) <= t <= w*i }.
//
// An ObservationSet carries the per-sensor *representatives* (the mean of a
// sensor's samples within the window) plus the screen-tier caches derived
// from them; the pipeline maps each sensor's representative to a model state
// (eq. (3)), so a sensor contributes one vote per window regardless of how
// many of its packets survived the radio. Raw per-record retention is an
// opt-in (WindowerConfig::keep_raw) -- the fleet path consumes only the flat
// rep arrays and cached_mean.
//
// The windower itself is columnar: per-sensor running sums live in
// slot-indexed SoA arenas (O(1) sensor-id -> slot, reused across windows), a
// record's floating-point adds are batched through the kernel dispatch
// table's accum_rows/sum_rows entries, and every per-window container is
// recycled, so the steady-state ingest path performs zero allocations per
// record. Finalization reproduces the legacy map-based accumulation order
// bit-for-bit (see windower.cpp), so goldens and checkpoints are unchanged.

#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "trace/record.h"
#include "util/serialize_fwd.h"

namespace sentinel {

struct ObservationSet {
  std::size_t window_index = 0;  // i, 1-based as in the paper
  double window_start = 0.0;     // seconds
  double window_end = 0.0;       // seconds

  /// All raw attribute vectors received in this window. Populated only when
  /// the producing windower keeps raw history (WindowerConfig::keep_raw) or
  /// the window was hand-built; the flat rep arrays below are authoritative.
  std::vector<AttrVec> raw;

  /// Per-sensor representative: mean of that sensor's samples in the window.
  /// Sensors with no surviving packets this window are absent. Like `raw`,
  /// populated only with keep_raw (it duplicates rep_sensors/rep_points as a
  /// map; rebuildable from them).
  std::map<SensorId, AttrVec> per_sensor;

  /// Mean over all raw observations, filled by the windower at finalization
  /// (same accumulation order as vecn::mean over the raw records, so the
  /// bits match). Empty for hand-built windows; overall_mean() computes it
  /// on demand then. Caching it means window replay (the fleet's dominant
  /// workload) never re-walks the raw vectors.
  AttrVec cached_mean;

  /// Flat per-sensor representatives in ascending sensor order, filled at
  /// finalization: rep_points[j] is sensor rep_sensors[j]'s representative.
  /// The pipeline's per-window passes (spawn scan, eq. (3) mapping, eq. (5)
  /// update) all iterate these arrays instead of walking a map. Empty for
  /// hand-built windows (the pipeline copies out of per_sensor then).
  std::vector<SensorId> rep_sensors;
  std::vector<AttrVec> rep_points;

  /// Screen-tier line-rate cache, also filled at finalization (while the
  /// representatives are still cache-hot): rep_sums[j] is
  /// vecn::scalar_sum(rep_points[j]), and rep_total is the attr-wise sum
  /// over all representatives in rep order. With these, a screening
  /// pipeline touches only one scalar per healthy sensor per window -- the
  /// full representative vectors are read for escalated sensors alone (the
  /// screened-bloc mean comes from rep_total minus the escalated points).
  /// Empty for hand-built windows; the pipeline falls back to computing
  /// the identical values from rep_points / per_sensor.
  std::vector<double> rep_sums;
  AttrVec rep_total;

  /// True when the window saw no observations at all. Checks the rep arrays
  /// as well as raw/per_sensor so a keep_raw=false window (raw never
  /// retained) still reads as occupied.
  bool empty() const { return raw.empty() && per_sensor.empty() && rep_sensors.empty(); }

  /// Number of sensors represented in this window. Prefers the flat rep
  /// arrays so a pre-aggregated upload (representatives only, no per-sensor
  /// map and no raw samples -- what a cluster head that windows locally
  /// sends) still counts its sensors for the min-sensors gate and the
  /// fleet's ingest weight. Identical to per_sensor.size() whenever the map
  /// is populated.
  std::size_t sensor_count() const {
    return rep_sensors.empty() ? per_sensor.size() : rep_sensors.size();
  }

  /// Mean over all raw observations (the input to observable-state
  /// identification, eq. (2)). Prefers the finalization-time cache (the only
  /// source when raw history is off). Throws if the window is empty.
  AttrVec overall_mean() const;

  /// Representatives as a flat (sensor, value) list in sensor order.
  std::vector<std::pair<SensorId, AttrVec>> representatives() const;
};

/// Windower configuration.
struct WindowerConfig {
  /// The paper's w (they use 12 samples x 5 min = 1 hour). Must be > 0.
  double window_seconds = 0.0;
  /// Retain each window's raw attribute vectors and the per_sensor map in
  /// the emitted ObservationSet. Costs one heap copy per record plus map
  /// nodes per sensor per window; the detection pipeline reads only the rep
  /// arrays + cached_mean, so the fleet path runs with this off.
  bool keep_raw = true;
};

/// Streaming windower: feed records in nondecreasing-ish time order, pop
/// completed windows. Records may arrive slightly out of order within a
/// window; a record older than an already-emitted window is dropped and
/// counted as late.
class Windower {
 public:
  explicit Windower(const WindowerConfig& cfg);
  /// Legacy convenience: window duration only, raw history retained.
  explicit Windower(double window_seconds)
      : Windower(WindowerConfig{window_seconds, /*keep_raw=*/true}) {}

  /// Add a record. Returns any windows completed by this record's arrival
  /// (possibly more than one if time jumped; empty windows are emitted so the
  /// caller sees gaps explicitly -- the pipeline skips them).
  std::vector<ObservationSet> add(const SensorRecord& rec);

  /// Allocation-free variant: invokes `on_window(ObservationSet&&)` for each
  /// completed window instead of materializing a result vector.
  template <typename Fn>
  void add(const SensorRecord& rec, Fn&& on_window) {
    add_batch(std::span<const SensorRecord>(&rec, 1), std::forward<Fn>(on_window));
  }

  /// Bulk entry: the fused decode -> window -> screen-cache pass. The trace
  /// readers and FleetMonitor feed whole decoded batches here; per record the
  /// window bookkeeping runs inline and the floating-point accumulation is
  /// deferred into gather buffers flushed through the kernel table
  /// (accum_rows / sum_rows), so the common no-window-closed case touches no
  /// allocator and no map. Completed windows are delivered to
  /// `on_window(ObservationSet&&)` in order; the emission object is recycled
  /// across windows when the callback reads it in place (the pipeline does).
  template <typename Fn>
  void add_batch(std::span<const SensorRecord> recs, Fn&& on_window) {
    for (const SensorRecord& rec : recs) {
      const auto idx = index_for(rec.time);
      if (current_index_ == 0) {
        open_window(idx);
      } else if (idx < current_index_) {
        ++late_records_;
        continue;
      } else if (idx > current_index_) {
        finalize_into(out_);
        on_window(std::move(out_));
        // Emit empty windows for any gap so downstream sees time holes.
        for (std::size_t i = current_index_ + 1; i < idx; ++i) {
          ObservationSet empty;
          empty.window_index = i;
          empty.window_start = window_seconds_ * static_cast<double>(i - 1);
          empty.window_end = window_seconds_ * static_cast<double>(i);
          on_window(std::move(empty));
        }
        open_window(idx);
      }
      accumulate(rec);
    }
  }

  /// Flush the final partial window (if any).
  std::optional<ObservationSet> flush();

  std::size_t late_records() const { return late_records_; }
  /// Records whose time was degenerate (NaN, negative, astronomically
  /// large) and had to be clamped into a representable window. Legal input
  /// per section 3.1's malformed-packet tolerance, but worth counting: a
  /// sensor emitting clamped timestamps is broken in a specific way.
  std::size_t clamped_records() const { return clamped_records_; }
  double window_seconds() const { return window_seconds_; }
  bool keep_raw() const { return keep_raw_; }

  /// Persist / restore the in-flight state -- the open window's index and
  /// pending records, plus the late/clamped tallies -- so a resumed pipeline
  /// continues mid-window exactly where the checkpointed one stopped (the
  /// resumable-checkpoint section; window_seconds_ is configuration and is
  /// not serialized). The byte format is the arrival-order record log, so
  /// checkpoints are byte-identical to the pre-columnar windower's; load()
  /// rebuilds the columnar accumulators by replaying the log.
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

 private:
  static constexpr std::uint32_t kDimsUnset = 0xFFFFFFFFu;
  static constexpr std::size_t kGatherCap = 256;

  void open_window(std::size_t index);
  std::size_t index_for(double time);
  /// Log `rec` into the recycled arrival-order log and update the columnar
  /// accumulators (gather-deferred adds). Allocation-free at steady state.
  void accumulate(const SensorRecord& rec);
  void accumulate_entry(const SensorRecord& e);
  std::uint32_t slot_for(SensorId id);
  void grow_stride(std::size_t dims);
  void rehash();
  void flush_slot_gather();
  void flush_total_gather();
  /// Build the completed window into `out` (recycling its buffers) from the
  /// columnar state, then reset the per-window accumulators. Throws the
  /// legacy dimension-mismatch errors (see windower.cpp); the window's
  /// content is discarded in that case.
  void finalize_into(ObservationSet& out);
  void reset_window_state();

  double window_seconds_;
  bool keep_raw_;
  std::size_t current_index_ = 0;  // 0 = no window open yet
  std::size_t late_records_ = 0;
  std::size_t clamped_records_ = 0;

  // Arrival-order log of the open window's records. Elements are recycled
  // (attrs keep their heap buffers across windows); only the first
  // pending_count_ entries are live. This is the checkpoint byte format and
  // the source of `raw` when keep_raw is on.
  std::vector<SensorRecord> pending_log_;
  std::size_t pending_count_ = 0;

  // Columnar per-sensor state. Slots are assigned on first sight of a sensor
  // id and persist for the windower's lifetime; per-window fields (counts,
  // dims, sums rows) are reset for touched slots only.
  std::vector<std::uint32_t> ht_;            // open-addressing: slot + 1, 0 = empty
  std::vector<SensorId> slot_ids_;           // slot -> sensor id
  std::vector<std::size_t> slot_counts_;     // samples this window
  std::vector<std::uint32_t> slot_dims_;     // dims of the slot's first sample
  std::vector<std::uint32_t> slot_conflict_; // dims of its first mismatched sample
  std::vector<double> sums_;                 // slot-major running sums, stride_ wide
  std::size_t stride_ = 0;                   // kern::padded(max dims seen)
  std::vector<std::uint32_t> touched_;       // slots hit this window, first-touch order

  // Whole-window running total (the cached_mean numerator).
  std::vector<double> total_;
  std::uint32_t window_dims_ = kDimsUnset;   // dims of the window's first record
  std::uint32_t window_conflict_ = kDimsUnset;

  // Gather buffers for the deferred adds. Sources point into pending_log_
  // entries (heap-stable across log growth), so a gather may span add_batch
  // calls; destinations are offsets so sums_ may grow underneath.
  std::array<std::size_t, kGatherCap> g_offs_;
  std::array<const double*, kGatherCap> g_srcs_;
  std::size_t g_count_ = 0;
  std::size_t g_dims_ = 0;
  std::array<const double*, kGatherCap> gt_srcs_;
  std::size_t gt_count_ = 0;

  ObservationSet out_;  // recycled emission object
};

/// Batch convenience: window a whole trace (records need not be sorted).
std::vector<ObservationSet> window_trace(std::vector<SensorRecord> records, double window_seconds);

}  // namespace sentinel
