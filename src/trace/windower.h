// Time windowing (paper section 3.1, eq. (1)).
//
// The collector node partitions incoming observations into windows of
// duration w: O_i = { p | <t,p> in O  and  w*(i-1) <= t <= w*i }.
//
// An ObservationSet carries both the raw observations of the window and the
// per-sensor *representatives* (the mean of a sensor's samples within the
// window). The pipeline maps each sensor's representative to a model state
// (eq. (3)), so a sensor contributes one vote per window regardless of how
// many of its packets survived the radio.

#pragma once

#include <cmath>
#include <cstddef>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "trace/record.h"
#include "util/serialize_fwd.h"

namespace sentinel {

struct ObservationSet {
  std::size_t window_index = 0;  // i, 1-based as in the paper
  double window_start = 0.0;     // seconds
  double window_end = 0.0;       // seconds

  /// All raw attribute vectors received in this window.
  std::vector<AttrVec> raw;

  /// Per-sensor representative: mean of that sensor's samples in the window.
  /// Sensors with no surviving packets this window are absent.
  std::map<SensorId, AttrVec> per_sensor;

  /// Mean over all raw observations, filled by the windower at finalization
  /// (same accumulation order as vecn::mean over `raw`, so the bits match).
  /// Empty for hand-built windows; overall_mean() computes it on demand then.
  /// Caching it means window replay (the fleet's dominant workload) never
  /// re-walks the raw vectors.
  AttrVec cached_mean;

  /// Flat copy of per_sensor in ascending sensor order, also filled at
  /// finalization: rep_points[j] is sensor rep_sensors[j]'s representative.
  /// The pipeline's per-window passes (spawn scan, eq. (3) mapping, eq. (5)
  /// update) all iterate these arrays instead of re-walking the map. Empty
  /// for hand-built windows (the pipeline copies out of per_sensor then).
  std::vector<SensorId> rep_sensors;
  std::vector<AttrVec> rep_points;

  /// Screen-tier line-rate cache, also filled at finalization (while the
  /// representatives are still cache-hot): rep_sums[j] is
  /// vecn::scalar_sum(rep_points[j]), and rep_total is the attr-wise sum
  /// over all representatives in rep order. With these, a screening
  /// pipeline touches only one scalar per healthy sensor per window -- the
  /// full representative vectors are read for escalated sensors alone (the
  /// screened-bloc mean comes from rep_total minus the escalated points).
  /// Empty for hand-built windows; the pipeline falls back to computing
  /// the identical values from rep_points / per_sensor.
  std::vector<double> rep_sums;
  AttrVec rep_total;

  bool empty() const { return raw.empty(); }

  /// Number of sensors represented in this window. Prefers the flat rep
  /// arrays so a pre-aggregated upload (representatives only, no per-sensor
  /// map and no raw samples -- what a cluster head that windows locally
  /// sends) still counts its sensors for the min-sensors gate and the
  /// fleet's ingest weight. Identical to per_sensor.size() whenever the map
  /// is populated.
  std::size_t sensor_count() const {
    return rep_sensors.empty() ? per_sensor.size() : rep_sensors.size();
  }

  /// Mean over all raw observations (the input to observable-state
  /// identification, eq. (2)). Throws if the window is empty.
  AttrVec overall_mean() const;

  /// Representatives as a flat (sensor, value) list in sensor order.
  std::vector<std::pair<SensorId, AttrVec>> representatives() const;
};

/// Streaming windower: feed records in nondecreasing-ish time order, pop
/// completed windows. Records may arrive slightly out of order within a
/// window; a record older than an already-emitted window is dropped and
/// counted as late.
class Windower {
 public:
  /// window_seconds: the paper's w (they use 12 samples x 5 min = 1 hour).
  explicit Windower(double window_seconds);

  /// Add a record. Returns any windows completed by this record's arrival
  /// (possibly more than one if time jumped; empty windows are emitted so the
  /// caller sees gaps explicitly -- the pipeline skips them).
  std::vector<ObservationSet> add(const SensorRecord& rec);

  /// Allocation-free variant: invokes `on_window(ObservationSet&&)` for each
  /// completed window instead of materializing a result vector. This is the
  /// hot path of DetectionPipeline::add_record (and, through it, the fleet's
  /// shard drain): most records complete no window, so the common case does
  /// exactly one push_back.
  template <typename Fn>
  void add(const SensorRecord& rec, Fn&& on_window) {
    const auto idx = index_for(rec.time);
    if (current_index_ == 0) {
      open_window(idx);
    } else if (idx < current_index_) {
      ++late_records_;
      return;
    } else if (idx > current_index_) {
      on_window(finalize_current());
      // Emit empty windows for any gap so downstream sees time holes.
      for (std::size_t i = current_index_ + 1; i < idx; ++i) {
        ObservationSet empty;
        empty.window_index = i;
        empty.window_start = window_seconds_ * static_cast<double>(i - 1);
        empty.window_end = window_seconds_ * static_cast<double>(i);
        on_window(std::move(empty));
      }
      open_window(idx);
    }
    pending_.push_back(rec);
  }

  /// Flush the final partial window (if any).
  std::optional<ObservationSet> flush();

  std::size_t late_records() const { return late_records_; }
  /// Records whose time was degenerate (NaN, negative, astronomically
  /// large) and had to be clamped into a representable window. Legal input
  /// per section 3.1's malformed-packet tolerance, but worth counting: a
  /// sensor emitting clamped timestamps is broken in a specific way.
  std::size_t clamped_records() const { return clamped_records_; }
  double window_seconds() const { return window_seconds_; }

  /// Persist / restore the in-flight state -- the open window's index and
  /// pending records, plus the late/clamped tallies -- so a resumed pipeline
  /// continues mid-window exactly where the checkpointed one stopped (the
  /// resumable-checkpoint section; window_seconds_ is configuration and is
  /// not serialized).
  void save(serialize::Writer& w) const;
  void load(serialize::Reader& r);

 private:
  ObservationSet finalize_current();
  void open_window(std::size_t index);
  std::size_t index_for(double time);

  double window_seconds_;
  std::size_t current_index_ = 0;  // 0 = no window open yet
  std::vector<SensorRecord> pending_;
  std::size_t late_records_ = 0;
  std::size_t clamped_records_ = 0;
};

/// Batch convenience: window a whole trace (records need not be sorted).
std::vector<ObservationSet> window_trace(std::vector<SensorRecord> records, double window_seconds);

}  // namespace sentinel
