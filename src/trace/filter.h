// Trace filtering helpers -- the recovery-action side of the paper's story:
// once sensors are diagnosed as compromised, downstream consumers re-derive
// the environment model from the survivors.

#pragma once

#include <set>
#include <vector>

#include "trace/record.h"

namespace sentinel {

/// Records from sensors NOT in `excluded` (quarantine).
std::vector<SensorRecord> exclude_sensors(const std::vector<SensorRecord>& records,
                                          const std::set<SensorId>& excluded);

/// Records from sensors in `included` only.
std::vector<SensorRecord> select_sensors(const std::vector<SensorRecord>& records,
                                         const std::set<SensorId>& included);

/// Records with time in [t_begin, t_end).
std::vector<SensorRecord> select_time_range(const std::vector<SensorRecord>& records,
                                            double t_begin, double t_end);

/// Distinct sensor ids present in a trace, ascending.
std::vector<SensorId> sensors_in(const std::vector<SensorRecord>& records);

}  // namespace sentinel
