#include "trace/health.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/stats.h"

namespace sentinel {

std::vector<SensorHealth> analyze_health(std::vector<SensorRecord> records,
                                         double nominal_period) {
  if (!(nominal_period > 0.0)) {
    throw std::invalid_argument("analyze_health: nominal_period must be positive");
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const SensorRecord& a, const SensorRecord& b) { return a.time < b.time; });

  std::map<SensorId, std::vector<const SensorRecord*>> by_sensor;
  for (const auto& r : records) by_sensor[r.sensor].push_back(&r);

  std::vector<SensorHealth> out;
  for (const auto& [sensor, recs] : by_sensor) {
    SensorHealth h;
    h.sensor = sensor;
    h.records = recs.size();
    h.first_time = recs.front()->time;
    h.last_time = recs.back()->time;

    const double span = h.last_time - h.first_time;
    const double expected = span / nominal_period + 1.0;
    h.completeness = std::min(1.0, static_cast<double>(recs.size()) / expected);

    const std::size_t dims = recs.front()->attrs.size();
    std::vector<RunningStats> attr_stats(dims);
    std::vector<RunningStats> diff_stats(dims);
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (recs[i]->attrs.size() != dims) continue;  // ragged record: skip
      for (std::size_t a = 0; a < dims; ++a) attr_stats[a].add(recs[i]->attrs[a]);
      if (i > 0) {
        h.max_gap = std::max(h.max_gap, recs[i]->time - recs[i - 1]->time);
        if (recs[i - 1]->attrs.size() == dims) {
          // Only adjacent samples: longer gaps would fold environment drift
          // into the noise estimate.
          if (recs[i]->time - recs[i - 1]->time <= 1.5 * nominal_period) {
            for (std::size_t a = 0; a < dims; ++a) {
              diff_stats[a].add(recs[i]->attrs[a] - recs[i - 1]->attrs[a]);
            }
          }
        }
      }
    }
    h.mean.resize(dims);
    h.stddev.resize(dims);
    h.noise_sigma.resize(dims);
    for (std::size_t a = 0; a < dims; ++a) {
      h.mean[a] = attr_stats[a].mean();
      h.stddev[a] = attr_stats[a].stddev();
      h.noise_sigma[a] = diff_stats[a].stddev() / std::sqrt(2.0);
    }
    out.push_back(std::move(h));
  }
  return out;
}

std::string to_string(const SensorHealth& h) {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "sensor %u: %zu records, completeness %.1f%%, max gap %.0fs",
                h.sensor, h.records, 100.0 * h.completeness, h.max_gap);
  os << buf;
  for (std::size_t a = 0; a < h.mean.size(); ++a) {
    std::snprintf(buf, sizeof buf, ", attr%zu mean %.1f sd %.1f noise %.2f", a, h.mean[a],
                  h.stddev[a], h.noise_sigma[a]);
    os << buf;
  }
  return os.str();
}

}  // namespace sentinel
