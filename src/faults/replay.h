// Trace replay and re-injection -- the paper's own evaluation methodology:
// "To evaluate the proposed methodology under attack scenarios, we injected
// malicious behavior into the system (the original data did not contain
// malicious attacks)" (section 4.2). Given any *recorded* trace (e.g. the
// real GDI CSVs, if you have them):
//
//  - TraceEnvironment reconstructs the ground truth Theta(t) as the robust
//    (median) per-window aggregate of the recorded readings, linearly
//    interpolated -- which is what attack models need, since the adversary
//    "knows the underlying dynamics of the environment";
//  - inject_into_trace() rewrites the recorded readings of the targeted
//    sensors through a faults::InjectionPlan, exactly as the live simulator
//    would, producing a faulty/attacked variant of the recorded deployment.

#pragma once

#include <memory>
#include <vector>

#include "faults/injection_plan.h"
#include "sim/environment.h"
#include "trace/record.h"

namespace sentinel::faults {

struct TraceEnvironmentConfig {
  /// Aggregation window for the truth estimate (paper scale: one hour).
  double window_seconds = 3600.0;
};

/// Ground truth reconstructed from a recorded trace. truth(t) linearly
/// interpolates the per-window medians (median across all readings in the
/// window -- robust to a minority of bad sensors in the recording); t before
/// the first / after the last window clamps.
class TraceEnvironment final : public sim::Environment {
 public:
  /// Throws std::invalid_argument if the trace yields no nonempty window.
  TraceEnvironment(const std::vector<SensorRecord>& records, TraceEnvironmentConfig cfg = {});

  std::size_t dims() const override { return dims_; }
  AttrVec truth(double t) const override;

  std::size_t windows() const { return centers_.size(); }

 private:
  std::size_t dims_ = 0;
  std::vector<double> times_;     // window center times, ascending
  std::vector<AttrVec> centers_;  // per-window median vectors
};

/// Rewrite a recorded trace through an injection plan: each record of a
/// targeted sensor is transformed (with ground truth supplied by
/// `truth_env`); suppressed packets are dropped. Untouched sensors pass
/// through unchanged. Record order is preserved.
std::vector<SensorRecord> inject_into_trace(const std::vector<SensorRecord>& records,
                                            const faults::InjectionPlan& plan,
                                            const sim::Environment& truth_env);

}  // namespace sentinel::faults
