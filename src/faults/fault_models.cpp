#include "faults/fault_models.h"

#include <algorithm>
#include <stdexcept>

namespace sentinel::faults {

StuckAtFault::StuckAtFault(AttrVec stuck_value) : stuck_value_(std::move(stuck_value)) {
  if (stuck_value_.empty()) throw std::invalid_argument("StuckAtFault: empty value");
}

std::optional<AttrVec> StuckAtFault::apply(SensorId, double, const AttrVec&, const AttrVec&) {
  return stuck_value_;
}

CalibrationFault::CalibrationFault(AttrVec gains) : gains_(std::move(gains)) {
  if (gains_.empty()) throw std::invalid_argument("CalibrationFault: empty gains");
}

std::optional<AttrVec> CalibrationFault::apply(SensorId, double, const AttrVec& measured,
                                               const AttrVec&) {
  vecn::check_same_size(measured, gains_);
  AttrVec out(measured.size());
  for (std::size_t i = 0; i < measured.size(); ++i) out[i] = measured[i] * gains_[i];
  return out;
}

AdditiveFault::AdditiveFault(AttrVec offsets) : offsets_(std::move(offsets)) {
  if (offsets_.empty()) throw std::invalid_argument("AdditiveFault: empty offsets");
}

std::optional<AttrVec> AdditiveFault::apply(SensorId, double, const AttrVec& measured,
                                            const AttrVec&) {
  return vecn::add(measured, offsets_);
}

RandomNoiseFault::RandomNoiseFault(double sigma, std::uint64_t seed)
    : sigma_(sigma), rng_(seed, "random-noise-fault") {
  if (sigma < 0.0) throw std::invalid_argument("RandomNoiseFault: negative sigma");
}

std::optional<AttrVec> RandomNoiseFault::apply(SensorId, double, const AttrVec& measured,
                                               const AttrVec&) {
  AttrVec out = measured;
  for (double& x : out) x += rng_.gaussian(0.0, sigma_);
  return out;
}

DriftFault::DriftFault(int attr, double floor, double start_time, double drift_seconds)
    : attr_(attr), floor_(floor), start_time_(start_time), drift_seconds_(drift_seconds) {
  if (!(drift_seconds > 0.0)) throw std::invalid_argument("DriftFault: drift time must be positive");
}

std::optional<AttrVec> DriftFault::apply(SensorId, double t, const AttrVec& measured,
                                         const AttrVec&) {
  AttrVec out = measured;
  if (t < start_time_) return out;
  const double progress = std::min(1.0, (t - start_time_) / drift_seconds_);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (attr_ >= 0 && static_cast<std::size_t>(attr_) != i) continue;
    out[i] = out[i] + progress * (floor_ - out[i]);
  }
  return out;
}

}  // namespace sentinel::faults
