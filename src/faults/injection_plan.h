// Injection schedule: which fault/attack model afflicts which sensor, and
// when. The plan composes into the simulator through sim::RecordTransform.
//
// Multiple entries may target the same sensor (e.g. a drift fault followed by
// stuck-at); entries are evaluated in insertion order and chained -- each
// active entry transforms the output of the previous one.

#pragma once

#include <map>
#include <memory>
#include <vector>

#include "faults/fault.h"
#include "sim/network.h"

namespace sentinel::faults {

class InjectionPlan {
 public:
  /// Attach `model` to `sensor`, active on [start_time, end_time).
  /// end_time <= 0 means "until the end of the simulation".
  void add(SensorId sensor, FaultModelPtr model, double start_time = 0.0,
           double end_time = -1.0);

  /// Apply all active entries for this sensor at time t.
  std::optional<AttrVec> apply(SensorId sensor, double t, const AttrVec& measured,
                               const AttrVec& truth) const;

  /// Sensors with at least one entry (the injected set, for ground truth in
  /// accuracy experiments).
  std::vector<SensorId> injected_sensors() const;

  bool has_entries_for(SensorId sensor) const;
  std::size_t size() const;

 private:
  struct Entry {
    FaultModelPtr model;
    double start;
    double end;  // < 0 = open-ended

    bool active(double t) const { return t >= start && (end < 0.0 || t < end); }
  };

  std::map<SensorId, std::vector<Entry>> entries_;
};

/// Bind a plan into a simulator transform. The returned closure shares
/// ownership of the plan, so the plan outlives the simulation.
sim::RecordTransform make_transform(std::shared_ptr<InjectionPlan> plan);

}  // namespace sentinel::faults
