// Accidental-error models (paper section 3.3, "Model for Accidental Errors"):
//   Stuck-at-Value -- the sensor constantly reports a fixed reading;
//   Calibration   -- readings affected by a multiplicative error;
//   Additive      -- readings affected by an additive error;
//   Random-Noise  -- readings affected by zero-mean noise with high variance.
// Plus DriftFault, modelling the paper's real faulty sensor 6, whose humidity
// "starts reporting a continuously decreasing value ... eventually leading to
// an almost-zero value" before sticking there (the field-study observation
// that sensors degrade days before the electronics fail).

#pragma once

#include <cstdint>

#include "faults/fault.h"
#include "util/rng.h"

namespace sentinel::faults {

class StuckAtFault final : public FaultModel {
 public:
  explicit StuckAtFault(AttrVec stuck_value);
  std::optional<AttrVec> apply(SensorId, double, const AttrVec&, const AttrVec&) override;
  std::string name() const override { return "stuck-at"; }

  const AttrVec& stuck_value() const { return stuck_value_; }

 private:
  AttrVec stuck_value_;
};

class CalibrationFault final : public FaultModel {
 public:
  /// gains: per-attribute multiplicative factor (x_e = gain * x_c).
  explicit CalibrationFault(AttrVec gains);
  std::optional<AttrVec> apply(SensorId, double, const AttrVec& measured,
                               const AttrVec&) override;
  std::string name() const override { return "calibration"; }

  const AttrVec& gains() const { return gains_; }

 private:
  AttrVec gains_;
};

class AdditiveFault final : public FaultModel {
 public:
  /// offsets: per-attribute additive bias (x_e = x_c + offset).
  explicit AdditiveFault(AttrVec offsets);
  std::optional<AttrVec> apply(SensorId, double, const AttrVec& measured,
                               const AttrVec&) override;
  std::string name() const override { return "additive"; }

  const AttrVec& offsets() const { return offsets_; }

 private:
  AttrVec offsets_;
};

class RandomNoiseFault final : public FaultModel {
 public:
  /// sigma: stddev of the extra zero-mean noise (per attribute, same value).
  RandomNoiseFault(double sigma, std::uint64_t seed);
  std::optional<AttrVec> apply(SensorId, double, const AttrVec& measured,
                               const AttrVec&) override;
  std::string name() const override { return "random-noise"; }

 private:
  double sigma_;
  Rng rng_;
};

/// Linear degradation of selected attributes toward a floor value over
/// `drift_seconds`, then stuck at the floor. attr < 0 drifts all attributes.
class DriftFault final : public FaultModel {
 public:
  DriftFault(int attr, double floor, double start_time, double drift_seconds);
  std::optional<AttrVec> apply(SensorId, double t, const AttrVec& measured,
                               const AttrVec&) override;
  std::string name() const override { return "drift-to-floor"; }

 private:
  int attr_;
  double floor_;
  double start_time_;
  double drift_seconds_;
};

/// Packet-suppressing fault: the node goes mute (crash / battery death).
class MuteFault final : public FaultModel {
 public:
  std::optional<AttrVec> apply(SensorId, double, const AttrVec&, const AttrVec&) override {
    return std::nullopt;
  }
  std::string name() const override { return "mute"; }
};

}  // namespace sentinel::faults
