#include "faults/attack_models.h"

#include <cmath>
#include <stdexcept>

namespace sentinel::faults {

bool StateRegion::contains(const AttrVec& p) const {
  if (center.empty()) return true;  // empty region = everywhere
  return vecn::dist(center, p) <= radius;
}

AttrVec coalition_injection(const AttrVec& truth, const AttrVec& target, double fraction,
                            const std::vector<ValueRange>& ranges) {
  if (!(fraction > 0.0 && fraction <= 1.0)) {
    throw std::invalid_argument("coalition_injection: fraction out of (0,1]");
  }
  vecn::check_same_size(truth, target);
  AttrVec v(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    v[i] = (target[i] - (1.0 - fraction) * truth[i]) / fraction;
    if (i < ranges.size()) v[i] = ranges[i].clamp(v[i]);
  }
  return v;
}

DynamicCreationAttack::DynamicCreationAttack(CreationAttackConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.created_state.empty()) {
    throw std::invalid_argument("DynamicCreationAttack: empty created state");
  }
  if (!(cfg_.on_seconds > 0.0) || cfg_.off_seconds < 0.0) {
    throw std::invalid_argument("DynamicCreationAttack: bad duty cycle");
  }
}

bool DynamicCreationAttack::active_at(double t, const AttrVec& truth) const {
  if (!cfg_.victim.contains(truth)) return false;
  const double period = cfg_.on_seconds + cfg_.off_seconds;
  if (period <= 0.0) return true;
  const double phase = std::fmod(t, period);
  return phase < cfg_.on_seconds;
}

std::optional<AttrVec> DynamicCreationAttack::apply(SensorId, double t, const AttrVec& measured,
                                                    const AttrVec& truth) {
  if (!active_at(t, truth)) return measured;
  return coalition_injection(truth, cfg_.created_state, cfg_.fraction, cfg_.ranges);
}

DynamicDeletionAttack::DynamicDeletionAttack(DeletionAttackConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.deleted.center.empty() || cfg_.hold_state.empty()) {
    throw std::invalid_argument("DynamicDeletionAttack: deleted/hold states required");
  }
}

bool DynamicDeletionAttack::active_at(const AttrVec& truth) const {
  return cfg_.deleted.contains(truth);
}

std::optional<AttrVec> DynamicDeletionAttack::apply(SensorId, double, const AttrVec& measured,
                                                    const AttrVec& truth) {
  if (!active_at(truth)) return measured;
  return coalition_injection(truth, cfg_.hold_state, cfg_.fraction, cfg_.ranges);
}

DynamicChangeAttack::DynamicChangeAttack(ChangeAttackConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.victim.center.empty() || cfg_.observed_as.empty()) {
    throw std::invalid_argument("DynamicChangeAttack: victim/target states required");
  }
}

bool DynamicChangeAttack::active_at(const AttrVec& truth) const {
  return cfg_.victim.contains(truth);
}

std::optional<AttrVec> DynamicChangeAttack::apply(SensorId, double, const AttrVec& measured,
                                                  const AttrVec& truth) {
  if (!active_at(truth)) return measured;
  return coalition_injection(truth, cfg_.observed_as, cfg_.fraction, cfg_.ranges);
}

MixedAttack::MixedAttack(CreationAttackConfig creation, DeletionAttackConfig deletion)
    : creation_(std::move(creation)), deletion_(std::move(deletion)) {}

std::optional<AttrVec> MixedAttack::apply(SensorId sensor, double t, const AttrVec& measured,
                                          const AttrVec& truth) {
  if (deletion_.active_at(truth)) return deletion_.apply(sensor, t, measured, truth);
  return creation_.apply(sensor, t, measured, truth);
}

BenignAttack::BenignAttack(double noise_sigma, std::uint64_t seed)
    : noise_sigma_(noise_sigma), rng_(seed, "benign-attack") {
  if (noise_sigma < 0.0) throw std::invalid_argument("BenignAttack: negative sigma");
}

std::optional<AttrVec> BenignAttack::apply(SensorId, double, const AttrVec&,
                                           const AttrVec& truth) {
  AttrVec out = truth;
  for (double& x : out) x += rng_.gaussian(0.0, noise_sigma_);
  return out;
}

}  // namespace sentinel::faults
