// Fault/attack model interface.
//
// A FaultModel rewrites a single sensor's reading at the moment it leaves the
// node -- the point where both a degrading transducer and an adversary who
// has reprogrammed the mote act. Models receive the ground truth Theta(t)
// because the paper's adversary "knows the underlying dynamics of the
// environment and attempts to selectively change the view of the environment
// sensed by the network" (section 3.4); accidental-error models ignore it.

#pragma once

#include <memory>
#include <optional>
#include <string>

#include "trace/record.h"

namespace sentinel::faults {

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Rewrite `measured` (truth + noise) at time t; nullopt suppresses the
  /// packet (mute sensor).
  virtual std::optional<AttrVec> apply(SensorId sensor, double t, const AttrVec& measured,
                                       const AttrVec& truth) = 0;

  /// Human-readable model name ("stuck-at", "dynamic-creation", ...).
  virtual std::string name() const = 0;
};

using FaultModelPtr = std::unique_ptr<FaultModel>;

/// Admissible range of a physical attribute; attack models clamp injected
/// values to it because out-of-range values "could be easily detected with
/// range checking" (paper section 4.2).
struct ValueRange {
  double lo = 0.0;
  double hi = 100.0;

  double clamp(double x) const { return x < lo ? lo : (x > hi ? hi : x); }
};

/// Per-attribute admissible ranges for the GDI (temperature, humidity) schema.
inline std::vector<ValueRange> gdi_ranges() {
  return {ValueRange{-40.0, 60.0}, ValueRange{0.0, 100.0}};
}

}  // namespace sentinel::faults
