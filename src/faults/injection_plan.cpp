#include "faults/injection_plan.h"

#include <stdexcept>

namespace sentinel::faults {

void InjectionPlan::add(SensorId sensor, FaultModelPtr model, double start_time,
                        double end_time) {
  if (!model) throw std::invalid_argument("InjectionPlan::add: null model");
  entries_[sensor].push_back(Entry{std::move(model), start_time, end_time});
}

std::optional<AttrVec> InjectionPlan::apply(SensorId sensor, double t, const AttrVec& measured,
                                            const AttrVec& truth) const {
  const auto it = entries_.find(sensor);
  if (it == entries_.end()) return measured;
  AttrVec current = measured;
  for (const auto& entry : it->second) {
    if (!entry.active(t)) continue;
    auto next = entry.model->apply(sensor, t, current, truth);
    if (!next) return std::nullopt;  // packet suppressed
    current = std::move(*next);
  }
  return current;
}

std::vector<SensorId> InjectionPlan::injected_sensors() const {
  std::vector<SensorId> out;
  out.reserve(entries_.size());
  for (const auto& [id, v] : entries_) {
    if (!v.empty()) out.push_back(id);
  }
  return out;
}

bool InjectionPlan::has_entries_for(SensorId sensor) const {
  const auto it = entries_.find(sensor);
  return it != entries_.end() && !it->second.empty();
}

std::size_t InjectionPlan::size() const {
  std::size_t n = 0;
  for (const auto& [id, v] : entries_) n += v.size();
  return n;
}

sim::RecordTransform make_transform(std::shared_ptr<InjectionPlan> plan) {
  if (!plan) throw std::invalid_argument("make_transform: null plan");
  return [plan = std::move(plan)](SensorId sensor, double t, const AttrVec& measured,
                                  const AttrVec& truth) {
    return plan->apply(sensor, t, measured, truth);
  };
}

}  // namespace sentinel::faults
