#include "faults/replay.h"

#include <algorithm>
#include <stdexcept>

#include "trace/windower.h"
#include "util/stats.h"

namespace sentinel::faults {

TraceEnvironment::TraceEnvironment(const std::vector<SensorRecord>& records,
                                   TraceEnvironmentConfig cfg) {
  if (!(cfg.window_seconds > 0.0)) {
    throw std::invalid_argument("TraceEnvironment: window must be positive");
  }
  for (const auto& w : window_trace(records, cfg.window_seconds)) {
    if (w.empty()) continue;
    if (dims_ == 0) dims_ = w.raw.front().size();
    // Per-attribute median across every reading in the window.
    AttrVec med(dims_);
    std::vector<double> xs;
    xs.reserve(w.raw.size());
    for (std::size_t a = 0; a < dims_; ++a) {
      xs.clear();
      for (const auto& p : w.raw) {
        if (p.size() == dims_) xs.push_back(p[a]);
      }
      med[a] = median(xs);
    }
    times_.push_back(0.5 * (w.window_start + w.window_end));
    centers_.push_back(std::move(med));
  }
  if (centers_.empty()) {
    throw std::invalid_argument("TraceEnvironment: trace has no nonempty window");
  }
}

AttrVec TraceEnvironment::truth(double t) const {
  if (t <= times_.front()) return centers_.front();
  if (t >= times_.back()) return centers_.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  const double frac = span > 0.0 ? (t - times_[lo]) / span : 0.0;
  AttrVec out(dims_);
  for (std::size_t a = 0; a < dims_; ++a) {
    out[a] = centers_[lo][a] * (1.0 - frac) + centers_[hi][a] * frac;
  }
  return out;
}

std::vector<SensorRecord> inject_into_trace(const std::vector<SensorRecord>& records,
                                            const faults::InjectionPlan& plan,
                                            const sim::Environment& truth_env) {
  std::vector<SensorRecord> out;
  out.reserve(records.size());
  for (const auto& rec : records) {
    if (!plan.has_entries_for(rec.sensor)) {
      out.push_back(rec);
      continue;
    }
    auto rewritten = plan.apply(rec.sensor, rec.time, rec.attrs, truth_env.truth(rec.time));
    if (!rewritten) continue;  // suppressed packet
    SensorRecord r = rec;
    r.attrs = std::move(*rewritten);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace sentinel::faults
