#include "sim/link.h"

#include <stdexcept>

namespace sentinel::sim {

BernoulliLoss::BernoulliLoss(double loss_prob, std::uint64_t seed)
    : loss_prob_(loss_prob), rng_(seed, "bernoulli-loss") {
  if (loss_prob < 0.0 || loss_prob > 1.0) {
    throw std::invalid_argument("BernoulliLoss: probability out of [0,1]");
  }
}

bool BernoulliLoss::deliver(double) { return !rng_.bernoulli(loss_prob_); }

GilbertElliottLoss::GilbertElliottLoss(Config cfg) : cfg_(cfg), rng_(cfg.seed, "ge-loss") {
  for (const double p : {cfg.p_good_to_bad, cfg.p_bad_to_good, cfg.loss_good, cfg.loss_bad}) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("GilbertElliottLoss: prob out of [0,1]");
  }
}

bool GilbertElliottLoss::deliver(double) {
  // Evolve the channel state once per packet, then sample loss in-state.
  if (bad_) {
    if (rng_.bernoulli(cfg_.p_bad_to_good)) bad_ = false;
  } else {
    if (rng_.bernoulli(cfg_.p_good_to_bad)) bad_ = true;
  }
  const double loss = bad_ ? cfg_.loss_bad : cfg_.loss_good;
  return !rng_.bernoulli(loss);
}

double GilbertElliottLoss::stationary_bad() const {
  const double denom = cfg_.p_good_to_bad + cfg_.p_bad_to_good;
  if (denom <= 0.0) return 0.0;
  return cfg_.p_good_to_bad / denom;
}

}  // namespace sentinel::sim
