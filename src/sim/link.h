// Radio link loss models.
//
// The GDI deployment the paper uses had substantial packet loss ("not all
// sensor data can be used due to missed or corrupted packets", section 4.1).
// Two standard models: independent Bernoulli loss, and a Gilbert-Elliott
// two-state Markov channel that produces the bursty losses real radios show.

#pragma once

#include <cstdint>
#include <memory>

#include "util/rng.h"

namespace sentinel::sim {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// True if the packet transmitted at time t is delivered.
  virtual bool deliver(double t) = 0;
};

/// Independent loss with probability p.
class BernoulliLoss final : public LossModel {
 public:
  BernoulliLoss(double loss_prob, std::uint64_t seed);
  bool deliver(double t) override;

 private:
  double loss_prob_;
  Rng rng_;
};

/// Gilbert-Elliott channel: GOOD and BAD states with per-state loss
/// probabilities and geometric sojourn times (transition probabilities
/// p_gb = GOOD->BAD, p_bg = BAD->GOOD evaluated per packet).
class GilbertElliottLoss final : public LossModel {
 public:
  struct Config {
    double p_good_to_bad = 0.02;
    double p_bad_to_good = 0.25;
    double loss_good = 0.01;
    double loss_bad = 0.6;
    std::uint64_t seed = 7;
  };

  explicit GilbertElliottLoss(Config cfg);
  bool deliver(double t) override;

  bool in_bad_state() const { return bad_; }
  /// Stationary probability of the BAD state.
  double stationary_bad() const;

 private:
  Config cfg_;
  Rng rng_;
  bool bad_ = false;
};

/// Lossless link, for tests.
class PerfectLink final : public LossModel {
 public:
  bool deliver(double) override { return true; }
};

}  // namespace sentinel::sim
