#include "sim/network.h"

namespace sentinel::sim {

void Collector::receive(SensorRecord rec, bool malformed) {
  if (malformed) {
    ++malformed_;
    return;
  }
  records_.push_back(std::move(rec));
}

}  // namespace sentinel::sim
