// Discrete-event deployment simulator.
//
// Drives a set of motes against an Environment for a configured duration,
// applies the per-sensor RecordTransform (faults/attacks), passes each packet
// through its mote's radio LossModel, and delivers survivors to the
// Collector. Events are processed in global time order (min-heap over motes'
// next sample times), so the produced trace is time-sorted like a real base
// station log.

#pragma once

#include <memory>
#include <vector>

#include "sim/environment.h"
#include "sim/link.h"
#include "sim/network.h"
#include "sim/sensor.h"

namespace sentinel::util {
class ThreadPool;
}

namespace sentinel::sim {

struct SimulationResult {
  std::vector<SensorRecord> trace;  // time-sorted delivered records
  DeliveryStats stats;
};

class Simulator {
 public:
  /// env must outlive the simulator.
  explicit Simulator(const Environment& env);

  /// Add a mote with its own radio link (nullptr = perfect link).
  void add_mote(MoteConfig cfg, std::unique_ptr<LossModel> link = nullptr);

  /// Set the fault/attack transform (default: identity).
  void set_transform(RecordTransform transform);

  /// Run from t=0 to `duration_seconds` and return the delivered trace.
  SimulationResult run(double duration_seconds);

  /// Parallel run: each mote's chain (sample -> transform -> link) touches
  /// only per-mote state, so motes simulate concurrently on `pool` workers
  /// and the per-mote traces are merged by (time, mote index) -- exactly the
  /// serial event heap's pop order, so the result is bit-identical to
  /// run(). Requires the transform to be safe for concurrent calls on
  /// *distinct* sensors (true for faults::make_transform: its dispatch is
  /// read-only and each fault model instance is bound to one sensor) and the
  /// environment's truth() to be a const pure read (true for all bundled
  /// environments). Consumes mote/link state just like run(): call one or
  /// the other, once.
  SimulationResult run(double duration_seconds, util::ThreadPool& pool);

  std::size_t mote_count() const { return motes_.size(); }

 private:
  const Environment& env_;
  std::vector<Mote> motes_;
  std::vector<std::unique_ptr<LossModel>> links_;
  RecordTransform transform_ = identity_transform();
};

/// Convenience: build the paper's 10-mote GDI-like deployment (5-minute
/// sampling, Gaussian noise, mild Bernoulli loss + malformed packets).
struct GdiDeploymentConfig {
  std::size_t num_sensors = 10;  // paper Table 1: K = 10
  double sample_period = 5.0 * kSecondsPerMinute;
  double noise_sigma = 0.4;
  double packet_loss = 0.12;   // GDI-era radios lost a nontrivial fraction
  double malform_prob = 0.01;  // "missing and malformed sensor packets"
  /// false: independent Bernoulli loss at `packet_loss`. true: bursty
  /// Gilbert-Elliott channel with the same long-run loss rate -- the loss
  /// pattern real radios show (minutes-long fades instead of scattered
  /// drops).
  bool bursty_loss = false;
  std::uint64_t seed = 42;
};

Simulator make_gdi_deployment(const Environment& env, const GdiDeploymentConfig& cfg);

}  // namespace sentinel::sim
