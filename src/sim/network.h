// Collector node and the record-transform hook.
//
// The paper's procedure "executes on a single data collector node (e.g., a
// base station or a cluster head)". The Collector accumulates delivered
// records and delivery statistics. RecordTransform is the seam where the
// faults/attacks library rewrites a mote's reading before it leaves the node
// -- an adversary reprogramming a mote, or a degrading transducer, both act
// at this point.

#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "trace/record.h"

namespace sentinel::sim {

/// Rewrites (or suppresses) a measured reading.
///   sensor:   the mote the reading came from
///   t:        sample time, seconds
///   measured: the honest reading (truth + noise)
///   truth:    ground truth Theta(t) -- attack models use it (the paper's
///             adversary "knows the underlying dynamics of the environment")
/// Returns the possibly-corrupted reading, or nullopt to suppress the packet.
using RecordTransform = std::function<std::optional<AttrVec>(
    SensorId sensor, double t, const AttrVec& measured, const AttrVec& truth)>;

/// Identity transform.
inline RecordTransform identity_transform() {
  return [](SensorId, double, const AttrVec& measured, const AttrVec&) {
    return std::optional<AttrVec>(measured);
  };
}

struct DeliveryStats {
  std::size_t sampled = 0;      // sensor readings taken
  std::size_t suppressed = 0;   // suppressed by the transform (node mute)
  std::size_t lost = 0;         // lost on the radio
  std::size_t malformed = 0;    // delivered but unparseable
  std::size_t delivered = 0;    // clean records the collector accepted
};

/// Base-station record sink.
class Collector {
 public:
  /// Accept a delivered record; malformed packets are counted and dropped.
  void receive(SensorRecord rec, bool malformed);

  const std::vector<SensorRecord>& records() const { return records_; }
  std::vector<SensorRecord> take_records() { return std::move(records_); }
  std::size_t malformed_count() const { return malformed_; }

 private:
  std::vector<SensorRecord> records_;
  std::size_t malformed_ = 0;
};

}  // namespace sentinel::sim
