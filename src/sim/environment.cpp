#include "sim/environment.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sentinel::sim {

ScriptedEnvironment::ScriptedEnvironment(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty()) throw std::invalid_argument("ScriptedEnvironment: no segments");
  for (std::size_t i = 1; i < segments_.size(); ++i) {
    if (segments_[i].until <= segments_[i - 1].until) {
      throw std::invalid_argument("ScriptedEnvironment: segments not strictly increasing");
    }
    if (segments_[i].value.size() != segments_.front().value.size()) {
      throw std::invalid_argument("ScriptedEnvironment: inconsistent dimensions");
    }
  }
}

std::size_t ScriptedEnvironment::dims() const { return segments_.front().value.size(); }

AttrVec ScriptedEnvironment::truth(double t) const {
  for (const auto& seg : segments_) {
    if (t < seg.until) return seg.value;
  }
  return segments_.back().value;
}

GdiEnvironment::GdiEnvironment(GdiEnvironmentConfig cfg) : cfg_(cfg), grid_step_(kSecondsPerHour) {
  if (!(cfg_.duration_seconds > 0.0)) {
    throw std::invalid_argument("GdiEnvironment: duration must be positive");
  }
  // Precompute OU paths on an hourly grid (+ slack for interpolation at the
  // end of the deployment).
  const auto steps = static_cast<std::size_t>(cfg_.duration_seconds / grid_step_) + 2;
  temp_weather_.resize(steps);
  hum_ripple_.resize(steps);

  Rng temp_rng(cfg_.seed, "gdi-weather-temp");
  Rng hum_rng(cfg_.seed, "gdi-weather-hum");

  // Exact OU discretization: x_{k+1} = x_k * e^{-dt/tau} + sigma*sqrt(1-e^{-2dt/tau}) * N(0,1),
  // stationary stddev sigma.
  const double decay = std::exp(-grid_step_ / cfg_.weather_tau);
  const double diffusion = std::sqrt(std::max(0.0, 1.0 - decay * decay));

  temp_weather_[0] = temp_rng.gaussian(0.0, cfg_.weather_sigma);
  hum_ripple_[0] = hum_rng.gaussian(0.0, cfg_.humidity_ripple);
  for (std::size_t k = 1; k < steps; ++k) {
    temp_weather_[k] = temp_weather_[k - 1] * decay +
                       cfg_.weather_sigma * diffusion * temp_rng.gaussian(0.0, 1.0);
    hum_ripple_[k] = hum_ripple_[k - 1] * decay +
                     cfg_.humidity_ripple * diffusion * hum_rng.gaussian(0.0, 1.0);
  }

  if (cfg_.include_pressure) {
    Rng pressure_rng(cfg_.seed, "gdi-weather-pressure");
    pressure_weather_.resize(steps);
    pressure_weather_[0] = pressure_rng.gaussian(0.0, cfg_.pressure_weather_sigma);
    for (std::size_t k = 1; k < steps; ++k) {
      pressure_weather_[k] =
          pressure_weather_[k - 1] * decay +
          cfg_.pressure_weather_sigma * diffusion * pressure_rng.gaussian(0.0, 1.0);
    }
  }
}

double GdiEnvironment::weather_at(double t, const std::vector<double>& path) const {
  const double pos = std::clamp(t / grid_step_, 0.0, static_cast<double>(path.size() - 1));
  const auto k = static_cast<std::size_t>(pos);
  const std::size_t k1 = std::min(k + 1, path.size() - 1);
  const double frac = pos - static_cast<double>(k);
  return path[k] * (1.0 - frac) + path[k1] * frac;
}

AttrVec GdiEnvironment::truth(double t) const {
  using std::numbers::pi;
  // Diurnal carrier: -1 at the coldest hour, +1 at the warmest. A tanh
  // sharpening flattens day/night plateaus so the environment *dwells* in a
  // handful of regimes (the paper's M_C has 4 key states), instead of gliding
  // uniformly along the temperature line.
  const double hours = t / kSecondsPerHour;
  const double phase = 2.0 * pi * (hours - cfg_.peak_hour) / 24.0;
  const double carrier = std::cos(phase);
  const double sharp = std::tanh(cfg_.diurnal_sharpness * carrier) /
                       std::tanh(cfg_.diurnal_sharpness);

  const double temp = cfg_.temp_mean + cfg_.temp_amplitude * sharp + weather_at(t, temp_weather_);
  double hum = cfg_.humidity_intercept + cfg_.humidity_slope * temp + weather_at(t, hum_ripple_);
  hum = std::clamp(hum, 0.0, 100.0);
  if (!cfg_.include_pressure) return {temp, hum};

  // Barometric pressure: twice-daily atmospheric tide plus weather fronts.
  const double tide = cfg_.pressure_semidiurnal * std::cos(2.0 * phase);
  const double pressure = cfg_.pressure_mean + tide + weather_at(t, pressure_weather_);
  return {temp, hum, pressure};
}

}  // namespace sentinel::sim
