#include "sim/simulator.h"

#include <algorithm>
#include <future>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/thread_pool.h"

namespace sentinel::sim {

Simulator::Simulator(const Environment& env) : env_(env) {}

void Simulator::add_mote(MoteConfig cfg, std::unique_ptr<LossModel> link) {
  motes_.emplace_back(cfg);
  links_.push_back(link ? std::move(link) : std::make_unique<PerfectLink>());
}

void Simulator::set_transform(RecordTransform transform) {
  if (!transform) throw std::invalid_argument("Simulator: null transform");
  transform_ = std::move(transform);
}

SimulationResult Simulator::run(double duration_seconds) {
  if (motes_.empty()) throw std::logic_error("Simulator::run with no motes");

  SimulationResult result;
  Collector collector;

  // Min-heap of (next sample time, mote index).
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t i = 0; i < motes_.size(); ++i) {
    heap.emplace(motes_[i].next_sample_time(), i);
  }

  while (!heap.empty()) {
    const auto [t, i] = heap.top();
    heap.pop();
    if (t >= duration_seconds) continue;  // this mote is done

    MoteSample s = motes_[i].sample(env_);
    heap.emplace(motes_[i].next_sample_time(), i);
    ++result.stats.sampled;

    const AttrVec truth = env_.truth(s.record.time);
    auto corrupted = transform_(s.record.sensor, s.record.time, s.record.attrs, truth);
    if (!corrupted) {
      ++result.stats.suppressed;
      continue;
    }
    s.record.attrs = std::move(*corrupted);

    if (!links_[i]->deliver(s.record.time)) {
      ++result.stats.lost;
      continue;
    }
    if (s.malformed) {
      ++result.stats.malformed;
    } else {
      ++result.stats.delivered;
    }
    collector.receive(std::move(s.record), s.malformed);
  }

  result.trace = collector.take_records();
  return result;
}

SimulationResult Simulator::run(double duration_seconds, util::ThreadPool& pool) {
  if (motes_.empty()) throw std::logic_error("Simulator::run with no motes");

  struct MoteResult {
    std::vector<SensorRecord> records;  // delivered, time-ordered
    DeliveryStats stats;
  };

  // One job per mote: the mote's own sampling loop, transform, and link.
  // Mirrors the per-event body of the serial run() exactly.
  const auto simulate_mote = [this, duration_seconds](std::size_t i) {
    MoteResult out;
    while (motes_[i].next_sample_time() < duration_seconds) {
      MoteSample s = motes_[i].sample(env_);
      ++out.stats.sampled;

      const AttrVec truth = env_.truth(s.record.time);
      auto corrupted = transform_(s.record.sensor, s.record.time, s.record.attrs, truth);
      if (!corrupted) {
        ++out.stats.suppressed;
        continue;
      }
      s.record.attrs = std::move(*corrupted);

      if (!links_[i]->deliver(s.record.time)) {
        ++out.stats.lost;
        continue;
      }
      if (s.malformed) {
        ++out.stats.malformed;  // the Collector counts and drops these
        continue;
      }
      ++out.stats.delivered;
      out.records.push_back(std::move(s.record));
    }
    return out;
  };

  std::vector<std::future<MoteResult>> jobs;
  jobs.reserve(motes_.size());
  for (std::size_t i = 0; i < motes_.size(); ++i) {
    jobs.push_back(pool.submit([&simulate_mote, i] { return simulate_mote(i); }));
  }
  std::vector<MoteResult> per_mote;
  per_mote.reserve(jobs.size());
  for (auto& j : jobs) j.wait();
  for (auto& j : jobs) per_mote.push_back(j.get());

  SimulationResult result;
  std::size_t total = 0;
  for (const auto& m : per_mote) {
    result.stats.sampled += m.stats.sampled;
    result.stats.suppressed += m.stats.suppressed;
    result.stats.lost += m.stats.lost;
    result.stats.malformed += m.stats.malformed;
    result.stats.delivered += m.stats.delivered;
    total += m.records.size();
  }

  // Merge by (time, mote index): the serial run's event heap pops the
  // smallest time with ties to the lowest mote index, so this k-way merge
  // reproduces its trace order exactly.
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::vector<std::size_t> pos(per_mote.size(), 0);
  for (std::size_t i = 0; i < per_mote.size(); ++i) {
    if (!per_mote[i].records.empty()) heap.emplace(per_mote[i].records.front().time, i);
  }
  result.trace.reserve(total);
  while (!heap.empty()) {
    const auto [t, i] = heap.top();
    heap.pop();
    result.trace.push_back(std::move(per_mote[i].records[pos[i]]));
    if (++pos[i] < per_mote[i].records.size()) {
      heap.emplace(per_mote[i].records[pos[i]].time, i);
    }
  }
  return result;
}

Simulator make_gdi_deployment(const Environment& env, const GdiDeploymentConfig& cfg) {
  Simulator sim(env);
  for (std::size_t i = 0; i < cfg.num_sensors; ++i) {
    MoteConfig mc;
    mc.id = static_cast<SensorId>(i);
    mc.sample_period = cfg.sample_period;
    mc.noise_sigma = cfg.noise_sigma;
    mc.malform_prob = cfg.malform_prob;
    mc.seed = cfg.seed;
    const std::uint64_t link_seed = Rng::derive(cfg.seed, "link-" + std::to_string(i));
    std::unique_ptr<LossModel> link;
    if (cfg.bursty_loss) {
      // Gilbert-Elliott sized so the stationary loss matches cfg.packet_loss:
      // long-run loss = P(bad) * loss_bad + P(good) * loss_good with
      // loss_good ~ 0; choose P(bad) = packet_loss / loss_bad.
      GilbertElliottLoss::Config ge;
      ge.loss_good = 0.005;
      ge.loss_bad = 0.7;
      ge.p_bad_to_good = 0.2;  // mean burst ~5 packets (~25 min at 5-min sampling)
      const double p_bad = std::clamp(cfg.packet_loss / ge.loss_bad, 0.0, 0.9);
      ge.p_good_to_bad = ge.p_bad_to_good * p_bad / std::max(1e-9, 1.0 - p_bad);
      ge.seed = link_seed;
      link = std::make_unique<GilbertElliottLoss>(ge);
    } else {
      link = std::make_unique<BernoulliLoss>(cfg.packet_loss, link_seed);
    }
    sim.add_mote(mc, std::move(link));
  }
  return sim;
}

}  // namespace sentinel::sim
