// Mote (sensor node) model.
//
// Paper assumptions (section 3.1): sensors are multimodal, sample the
// environment periodically (GDI: every 5 minutes), and a correct sensor j
// reports p_j = Theta(t) + N_j where N_j is zero-mean measurement noise.
// Real deployments lose and corrupt packets; the mote model exposes both.

#pragma once

#include <cstdint>
#include <optional>

#include "sim/environment.h"
#include "trace/record.h"
#include "util/rng.h"

namespace sentinel::sim {

struct MoteConfig {
  SensorId id = 0;
  double sample_period = 5.0 * kSecondsPerMinute;  // GDI sampling interval
  double noise_sigma = 0.4;       // stddev of N_j per attribute
  double phase_jitter = 0.0;      // uniform jitter on each sample time, seconds
  double malform_prob = 0.0;      // packet arrives but is unparseable
  std::uint64_t seed = 1;
};

/// Outcome of one sampling instant at a mote.
struct MoteSample {
  SensorRecord record;
  bool malformed = false;  // packet emitted but corrupted in framing
};

/// A sensor node: samples the environment with additive Gaussian noise.
/// Fault/attack transformation and radio loss are applied by later stages
/// (faults::InjectionPlan and sim::LossyLink) so that a mote composes with
/// any fault model.
class Mote {
 public:
  explicit Mote(MoteConfig cfg);

  const MoteConfig& config() const { return cfg_; }

  /// Next scheduled sample time (seconds).
  double next_sample_time() const { return next_time_; }

  /// Take the sample scheduled at next_sample_time() and advance the
  /// schedule. The record's attrs are truth + Gaussian noise.
  MoteSample sample(const Environment& env);

 private:
  MoteConfig cfg_;
  Rng rng_;
  double next_time_;
};

}  // namespace sentinel::sim
