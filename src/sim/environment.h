// Environment models Theta(t) (paper section 3.1).
//
// The paper evaluates on one month of Great Duck Island (GDI) traces; we do
// not have that proprietary dataset, so GdiEnvironment is the documented
// substitute (DESIGN.md section 3): a diurnal temperature profile with
// Ornstein-Uhlenbeck weather-front modulation, and humidity anti-correlated
// with temperature. The paper's correct model M_C has key states
// (12,94), (17,84), (24,70), (31,56) (temperature C, humidity %RH) -- those
// lie on the line hum = 118 - 2*temp, which this generator reproduces: a day
// sweeps temperature ~12..32 C and humidity sweeps ~56..94 %RH in
// anti-phase, exactly the shape of the paper's Fig. 6.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/record.h"
#include "util/rng.h"

namespace sentinel::sim {

/// The ground-truth environment Theta(t).
class Environment {
 public:
  virtual ~Environment() = default;

  /// Number of attributes n.
  virtual std::size_t dims() const = 0;

  /// True attribute vector at time t (seconds). Deterministic: repeated calls
  /// with the same t return the same value.
  virtual AttrVec truth(double t) const = 0;
};

/// Fixed Theta(t) = value; for unit tests.
class ConstantEnvironment final : public Environment {
 public:
  explicit ConstantEnvironment(AttrVec value) : value_(std::move(value)) {}
  std::size_t dims() const override { return value_.size(); }
  AttrVec truth(double) const override { return value_; }

 private:
  AttrVec value_;
};

/// Piecewise-constant schedule of states; for controlled state-machine tests
/// (e.g. force the environment through a known Markov chain).
class ScriptedEnvironment final : public Environment {
 public:
  struct Segment {
    double until;  // state holds for t < until (seconds)
    AttrVec value;
  };

  /// Segments must be sorted by `until`; times >= the last `until` return the
  /// last value.
  explicit ScriptedEnvironment(std::vector<Segment> segments);

  std::size_t dims() const override;
  AttrVec truth(double t) const override;

 private:
  std::vector<Segment> segments_;
};

struct GdiEnvironmentConfig {
  double duration_seconds = 31.0 * kSecondsPerDay;  // one month, like the paper
  double temp_mean = 21.5;     // C, midpoint of the paper's 12..31 range
  double temp_amplitude = 9.5; // C, diurnal half-swing
  /// >1 flattens day/night plateaus. The default is chosen so the
  /// environment *dwells* in a few well-separated regimes with quick
  /// transitions -- the regime structure the paper's Fig. 7 M_C shows --
  /// rather than gliding continuously along the temp/humidity line.
  double diurnal_sharpness = 2.8;
  double weather_sigma = 1.0;  // OU stationary stddev (day-to-day fronts), C
  double weather_tau = 36.0 * kSecondsPerHour;  // OU relaxation time
  double humidity_intercept = 118.0;  // hum = intercept + slope * temp
  double humidity_slope = -2.0;
  double humidity_ripple = 1.5;  // small independent OU ripple on humidity, %RH
  double peak_hour = 14.0;       // warmest time of day
  /// Third attribute: barometric pressure (the paper's motes are multimodal:
  /// "temperature, humidity, and pressure"). Off by default -- the paper's
  /// tables are 2-attribute -- but the whole pipeline is dimension-agnostic
  /// and the multimodal integration test runs with it on.
  bool include_pressure = false;
  double pressure_mean = 1013.0;       // hPa
  double pressure_semidiurnal = 1.5;   // atmospheric-tide amplitude, hPa
  double pressure_weather_sigma = 4.0; // OU front amplitude, hPa
  std::uint64_t seed = 42;
};

/// Diurnal + OU-weather two-attribute (temperature, humidity) environment.
class GdiEnvironment final : public Environment {
 public:
  explicit GdiEnvironment(GdiEnvironmentConfig cfg);

  std::size_t dims() const override { return cfg_.include_pressure ? 3 : 2; }
  AttrVec truth(double t) const override;

  const GdiEnvironmentConfig& config() const { return cfg_; }

 private:
  double weather_at(double t, const std::vector<double>& path) const;

  GdiEnvironmentConfig cfg_;
  // OU paths precomputed on an hourly grid so truth(t) is deterministic.
  std::vector<double> temp_weather_;
  std::vector<double> hum_ripple_;
  std::vector<double> pressure_weather_;
  double grid_step_;
};

}  // namespace sentinel::sim
