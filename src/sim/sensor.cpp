#include "sim/sensor.h"

#include <stdexcept>
#include <string>

namespace sentinel::sim {

Mote::Mote(MoteConfig cfg)
    : cfg_(cfg),
      rng_(cfg.seed, "mote-" + std::to_string(cfg.id)),
      next_time_(0.0) {
  if (!(cfg_.sample_period > 0.0)) throw std::invalid_argument("Mote: period must be positive");
  if (cfg_.noise_sigma < 0.0) throw std::invalid_argument("Mote: negative noise sigma");
}

MoteSample Mote::sample(const Environment& env) {
  double t = next_time_;
  if (cfg_.phase_jitter > 0.0) t += rng_.uniform(0.0, cfg_.phase_jitter);
  next_time_ += cfg_.sample_period;

  MoteSample out;
  out.record.sensor = cfg_.id;
  out.record.time = t;
  out.record.attrs = env.truth(t);
  for (double& x : out.record.attrs) x += rng_.gaussian(0.0, cfg_.noise_sigma);
  out.malformed = cfg_.malform_prob > 0.0 && rng_.bernoulli(cfg_.malform_prob);
  return out;
}

}  // namespace sentinel::sim
