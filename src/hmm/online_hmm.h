// On-line HMM estimation (paper section 3.2).
//
// At the end of each observation window the pipeline knows the current hidden
// state (the correct environment state c_i) and the current observation
// symbol (the observable state o_i for M_CO, or the error/attack state e_i^k
// for M_CE). With j the current state, i the previous state, and l the
// current symbol, the update is:
//
//   if j != i:  for all k:  a_ik = (1 - beta)  * a_ik + beta  * delta(k, j)
//   always:     for all k:  b_jk = (1 - gamma) * b_jk + gamma * delta(k, l)
//
// beta, gamma in (0,1) are learning factors; A and B remain row-stochastic by
// construction. (The paper's text writes the B update against row i, the
// *previous* state; since B is updated every step and the environment dwells
// in a state for many windows, i == j at almost every update and the two
// readings coincide -- we update the current state's row, which is the one
// that makes the emission semantics of the tables in section 4 come out, and
// offer `update_previous_row` for the literal reading.)
//
// Hidden states and symbols are dynamic: the clusterer can spawn model states
// at any time, and M_CE has the fictitious bottom symbol for windows where a
// tracked sensor agrees with the correct sensors. New rows start as identity
// (delta on the first symbol seen from that state), matching the paper's
// "A and B can be set equal to identity matrices" initialization.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "hmm/markov_chain.h"
#include "util/matrix.h"
#include "util/serialize_fwd.h"
#include "util/sync.h"

namespace sentinel::hmm {

/// The paper's fictitious bottom state: a tracked sensor currently producing
/// data in agreement with the correct sensors.
inline constexpr StateId kBottomSymbol = std::numeric_limits<StateId>::max();

struct OnlineHmmConfig {
  double beta = 0.9;   // transition learning factor (paper Table 1)
  double gamma = 0.9;  // emission learning factor (paper Table 1)
  bool update_previous_row = false;  // literal reading of the paper's B update
};

class OnlineHmm {
 public:
  explicit OnlineHmm(OnlineHmmConfig cfg = {});

  /// One estimation step: hidden state and the symbol it emitted this window.
  void observe(StateId hidden, StateId symbol);

  std::size_t steps() const { return steps_; }
  std::size_t num_hidden() const { return hidden_ids_.size(); }
  std::size_t num_symbols() const { return symbol_ids_.size(); }

  /// Hidden state ids in row order of the matrices.
  const std::vector<StateId>& hidden_states() const { return hidden_ids_; }
  /// Symbol ids in column order of the emission matrix.
  const std::vector<StateId>& symbols() const { return symbol_ids_; }
  /// How many times each symbol (in symbols() order) was observed.
  const std::vector<double>& symbol_totals() const { return symbol_totals_; }

  std::optional<std::size_t> hidden_index(StateId id) const;
  std::optional<std::size_t> symbol_index(StateId id) const;

  /// Row-stochastic snapshots (copies) of the fixed-gain (beta/gamma) EMA
  /// estimates -- the paper's literal update rule. These weight recent
  /// windows heavily (gamma = 0.9 forgets in a couple of steps).
  Matrix transition_matrix() const { return a_; }
  Matrix emission_matrix() const { return b_; }

  /// Row-stochastic snapshots of the decreasing-gain (1/n per row) estimates
  /// -- the same online update with gain 1/n instead of a constant, which
  /// converges to the long-run transition/emission frequencies (cf. the
  /// paper's reference to Stiller & Radons for advanced online estimation).
  /// The structural classifier runs on these: a duty-cycled Creation attack
  /// splits a row ~0.5/0.5 here, where the fixed-gain row oscillates with
  /// whatever the last few windows showed. Rows never updated materialize as
  /// identity, matching the fixed-gain initialization.
  ///
  /// The normalized matrices are cached behind a dirty flag (invalidated by
  /// observe()), so a diagnosis pass that consults them repeatedly pays the
  /// normalization once. The cache is mutex-guarded: concurrent const calls
  /// from multiple threads stay safe, per the pipeline's const-read contract.
  Matrix transition_matrix_avg() const;
  Matrix emission_matrix_avg() const;

  double transition(StateId from, StateId to) const;
  double emission(StateId hidden, StateId symbol) const;

  std::optional<StateId> last_hidden() const { return last_hidden_; }

  const OnlineHmmConfig& config() const { return cfg_; }

  /// Checkpointing: full estimator state (both gain variants). load()
  /// requires the same OnlineHmmConfig the saved instance had. The stream
  /// overloads use the text codec on write and auto-detect the codec on read.
  void save(serialize::Writer& w) const;
  void save(std::ostream& os) const;
  static OnlineHmm load(OnlineHmmConfig cfg, serialize::Reader& r);
  static OnlineHmm load(OnlineHmmConfig cfg, std::istream& is);

 private:
  // The slab (hmm/hmm_slab.h) stores the same estimator state in contiguous
  // per-lane arenas and materializes/adopts OnlineHmm objects field-wise.
  friend class OnlineHmmSlab;

  std::size_t intern_hidden(StateId id, StateId first_symbol);
  std::size_t intern_symbol(StateId id);

  OnlineHmmConfig cfg_;
  std::vector<StateId> hidden_ids_;
  std::vector<StateId> symbol_ids_;
  std::map<StateId, std::size_t> hidden_index_;
  std::map<StateId, std::size_t> symbol_index_;
  Matrix a_;  // num_hidden x num_hidden, fixed gain beta
  Matrix b_;  // num_hidden x num_symbols, fixed gain gamma
  Matrix a_avg_;  // decreasing-gain counterparts (unnormalized: raw counts)
  Matrix b_avg_;
  std::vector<double> a_row_counts_;
  std::vector<double> b_row_counts_;
  std::vector<double> symbol_totals_;
  std::optional<StateId> last_hidden_;
  std::size_t steps_ = 0;

  // Lazily normalized copies of a_avg_/b_avg_, guarded by avg_mu_.
  void refresh_avg_caches_locked() const;
  mutable util::CopyableMutex avg_mu_;
  mutable bool avg_dirty_ = true;
  mutable Matrix a_avg_cache_;
  mutable Matrix b_avg_cache_;
};

}  // namespace sentinel::hmm
