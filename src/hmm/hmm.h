// Classical discrete Hidden Markov Model (paper section 2; Rabiner 1989).
//
// Characterized by hidden states S_1..S_M, observation symbols V_1..V_N, the
// state transition distribution A, the observation symbol distribution B, and
// the initial distribution pi. Implements the three classical problems with
// numerically scaled forward/backward recursions:
//   - evaluation:  log Pr{O | lambda}           (forward)
//   - decoding:    argmax_S Pr{S | O, lambda}   (Viterbi, log space)
//   - learning:    Baum-Welch EM
// This substrate backs the Warrender-style single-host baseline detector that
// the paper contrasts its approach against, and is used in tests as an
// independent check on the online estimator.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "util/matrix.h"
#include "util/rng.h"
#include "util/serialize_fwd.h"

namespace sentinel::hmm {

using Sequence = std::vector<std::size_t>;  // observation symbol indices

struct ForwardResult {
  double log_likelihood = 0.0;
  /// alpha_hat(t, i): scaled forward variables, rows = time, cols = state.
  Matrix scaled_alpha;
  /// c_t scaling factors; log_likelihood = -sum log c_t.
  std::vector<double> scales;
};

struct ViterbiResult {
  std::vector<std::size_t> path;  // most likely hidden-state sequence
  double log_probability = 0.0;
};

struct BaumWelchOptions {
  std::size_t max_iterations = 100;
  double tolerance = 1e-6;  // stop when loglik improves by less than this
  /// Probability floor applied after each M-step to keep the model ergodic
  /// (avoids zero rows that make later sequences impossible).
  double floor = 1e-10;
};

struct BaumWelchResult {
  std::vector<double> log_likelihood_per_iter;
  std::size_t iterations = 0;
  bool converged = false;
};

class Hmm {
 public:
  Hmm() = default;

  /// A: M x M row-stochastic, B: M x N row-stochastic, pi: length M summing
  /// to 1. Throws std::invalid_argument on malformed input.
  Hmm(Matrix a, Matrix b, std::vector<double> pi);

  /// Uniform model with M states and N symbols.
  static Hmm uniform(std::size_t num_states, std::size_t num_symbols);

  /// Random row-stochastic model (for Baum-Welch restarts).
  static Hmm random(std::size_t num_states, std::size_t num_symbols, Rng& rng);

  std::size_t num_states() const { return a_.rows(); }
  std::size_t num_symbols() const { return b_.cols(); }

  const Matrix& transition() const { return a_; }
  const Matrix& emission() const { return b_; }
  const std::vector<double>& initial() const { return pi_; }

  /// Scaled forward pass. Throws on empty sequence or out-of-range symbol.
  ForwardResult forward(const Sequence& obs) const;

  /// Scaled backward pass using the forward pass's scaling factors.
  /// Returns beta_hat(t, i).
  Matrix backward(const Sequence& obs, const std::vector<double>& scales) const;

  /// log Pr{O | lambda}.
  double log_likelihood(const Sequence& obs) const;

  /// Per-symbol normalized log-likelihood, the quantity thresholded by the
  /// baseline detector (lengths cancel out).
  double normalized_log_likelihood(const Sequence& obs) const;

  ViterbiResult viterbi(const Sequence& obs) const;

  /// Posterior decoding: gamma(t, i) = Pr{ s_t = S_i | O, lambda }. Rows sum
  /// to 1. Unlike Viterbi (the single best path), this gives the per-step
  /// marginal -- useful for confidence-weighted smoothing.
  Matrix posterior(const Sequence& obs) const;

  /// Baum-Welch EM over one or more observation sequences (multi-sequence
  /// update with per-sequence gammas/xis).
  BaumWelchResult baum_welch(const std::vector<Sequence>& sequences,
                             const BaumWelchOptions& opts = {});

  /// Checkpointing: full model (A, B, pi). The stream overloads use the text
  /// codec on write and auto-detect text vs binary on read (util/serialize.h).
  void save(serialize::Writer& w) const;
  void save(std::ostream& os) const;
  static Hmm load(serialize::Reader& r);
  static Hmm load(std::istream& is);

  /// Sample a (states, symbols) trajectory of given length.
  struct Sample {
    std::vector<std::size_t> states;
    Sequence symbols;
  };
  Sample sample(std::size_t length, Rng& rng) const;

 private:
  void validate() const;

  Matrix a_;                 // transitions
  Matrix b_;                 // emissions
  std::vector<double> pi_;   // initial distribution
};

}  // namespace sentinel::hmm
