// First-order Markov chain over a dynamic set of state ids.
//
// Used for the paper's M_C (the error/attack-free description of the
// environment handed to the user, Fig. 7) and M_O, and by the related-work
// style Markov-chain anomaly metrics. Estimation is by transition counts
// (MLE) over an id sequence; ids need not be contiguous -- the chain keeps an
// id <-> index mapping, matching the dynamic state set produced by the online
// clusterer.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/matrix.h"
#include "util/serialize_fwd.h"

namespace sentinel::hmm {

using StateId = std::uint32_t;

class MarkovChain {
 public:
  /// Record a transition from -> to (also counts both as visited).
  void add_transition(StateId from, StateId to);

  /// Record occupancy without a transition (first observation).
  void add_visit(StateId state);

  /// Feed a whole sequence.
  void add_sequence(const std::vector<StateId>& seq);

  std::size_t num_states() const { return index_.size(); }
  std::vector<StateId> states() const;  // in index order
  std::optional<std::size_t> index_of(StateId id) const;

  std::size_t visit_count(StateId id) const;
  std::size_t transition_count(StateId from, StateId to) const;
  std::size_t total_transitions() const { return total_transitions_; }

  /// Row-stochastic MLE transition matrix, rows/cols in states() order.
  /// States never left get a self-loop row.
  Matrix transition_matrix() const;

  /// Empirical occupancy distribution.
  std::vector<double> occupancy() const;

  /// Stationary distribution of transition_matrix() by power iteration.
  std::vector<double> stationary(std::size_t iterations = 2000, double tol = 1e-12) const;

  /// Copy with states whose occupancy is below `min_occupancy` (a fraction of
  /// total visits) removed; transitions through removed states are dropped.
  /// The paper prunes a fluctuation state from M_C the same way ("the
  /// transition to this state has a very low probability").
  MarkovChain pruned(double min_occupancy) const;

  /// Structural comparison: same state set and same transition *support*
  /// (which transitions exist), ignoring probabilities. The paper's
  /// error-vs-attack intuition: errors preserve M_C / M_O structure, attacks
  /// change it.
  bool same_structure(const MarkovChain& other) const;

  /// Log-likelihood of a sequence under the MLE matrix (unseen transitions
  /// get `epsilon`). Used by the Markov-chain baseline metrics.
  double log_likelihood(const std::vector<StateId>& seq, double epsilon = 1e-9) const;

  /// Entropy rate (nats/step) of the MLE chain under its occupancy
  /// distribution: sum_i pi_i * H(row_i). One of the anomaly metrics the
  /// paper's related work [11] computes ("local entropy"); low entropy =
  /// predictable dynamics.
  double entropy_rate() const;

  std::string to_string() const;

  /// Checkpointing: counts, visits and id ordering. The stream overloads use
  /// the text codec on write and auto-detect the codec on read.
  void save(serialize::Writer& w) const;
  void save(std::ostream& os) const;
  static MarkovChain load(serialize::Reader& r);
  static MarkovChain load(std::istream& is);

 private:
  std::size_t intern(StateId id);

  std::map<StateId, std::size_t> index_;
  std::vector<StateId> ids_;                       // index -> id
  std::vector<std::map<StateId, std::size_t>> counts_;  // per from-index: to-id -> count
  std::map<StateId, std::size_t> visits_;
  std::size_t total_transitions_ = 0;
};

}  // namespace sentinel::hmm
