#include "hmm/markov_chain.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/kernels.h"
#include "util/serialize.h"

namespace sentinel::hmm {

std::size_t MarkovChain::intern(StateId id) {
  const auto [it, inserted] = index_.try_emplace(id, ids_.size());
  if (inserted) {
    ids_.push_back(id);
    counts_.emplace_back();
  }
  return it->second;
}

void MarkovChain::add_visit(StateId state) {
  intern(state);
  ++visits_[state];
}

void MarkovChain::add_transition(StateId from, StateId to) {
  const std::size_t fi = intern(from);
  intern(to);
  ++counts_[fi][to];
  ++visits_[to];
  ++total_transitions_;
}

void MarkovChain::add_sequence(const std::vector<StateId>& seq) {
  if (seq.empty()) return;
  add_visit(seq.front());
  for (std::size_t i = 1; i < seq.size(); ++i) add_transition(seq[i - 1], seq[i]);
}

std::vector<StateId> MarkovChain::states() const { return ids_; }

std::optional<std::size_t> MarkovChain::index_of(StateId id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::size_t MarkovChain::visit_count(StateId id) const {
  const auto it = visits_.find(id);
  return it == visits_.end() ? 0 : it->second;
}

std::size_t MarkovChain::transition_count(StateId from, StateId to) const {
  const auto fi = index_of(from);
  if (!fi) return 0;
  const auto it = counts_[*fi].find(to);
  return it == counts_[*fi].end() ? 0 : it->second;
}

Matrix MarkovChain::transition_matrix() const {
  const std::size_t m = ids_.size();
  Matrix t(m, m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t row_total = 0;
    for (const auto& [to, c] : counts_[i]) row_total += c;
    if (row_total == 0) {
      t(i, i) = 1.0;  // absorbing self-loop for states never left
      continue;
    }
    for (const auto& [to, c] : counts_[i]) {
      t(i, index_.at(to)) = static_cast<double>(c) / static_cast<double>(row_total);
    }
  }
  return t;
}

std::vector<double> MarkovChain::occupancy() const {
  std::vector<double> occ(ids_.size(), 0.0);
  double total = 0.0;
  for (const auto& [id, c] : visits_) total += static_cast<double>(c);
  if (total <= 0.0) return occ;
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    occ[i] = static_cast<double>(visit_count(ids_[i]));
  }
  kern::k().div_scale(occ.data(), occ.size(), total);
  return occ;
}

std::vector<double> MarkovChain::stationary(std::size_t iterations, double tol) const {
  const std::size_t m = ids_.size();
  if (m == 0) return {};
  const Matrix t = transition_matrix();
  const auto& kk = kern::k();
  std::vector<double> p(m, 1.0 / static_cast<double>(m));
  std::vector<double> next(m);
  for (std::size_t it = 0; it < iterations; ++it) {
    // next = p * T, accumulated row-by-row in ascending i: the same
    // per-output addition order as the classic j-outer loop.
    std::fill(next.begin(), next.end(), 0.0);
    kk.vec_mat(p.data(), t.data(), m, m, t.stride(), next.data());
    double delta = 0.0;
    for (std::size_t j = 0; j < m; ++j) delta = std::max(delta, std::abs(next[j] - p[j]));
    p.swap(next);
    if (delta < tol) break;
  }
  return p;
}

MarkovChain MarkovChain::pruned(double min_occupancy) const {
  MarkovChain out;
  const auto occ = occupancy();
  auto keep = [&](StateId id) {
    const auto idx = index_of(id);
    return idx && occ[*idx] >= min_occupancy;
  };
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    const StateId from = ids_[i];
    if (!keep(from)) continue;
    out.intern(from);
    out.visits_[from] = visits_.at(from);
    for (const auto& [to, c] : counts_[i]) {
      if (!keep(to)) continue;
      out.intern(to);
      out.counts_[out.index_.at(from)][to] = c;
      out.total_transitions_ += c;
    }
  }
  return out;
}

bool MarkovChain::same_structure(const MarkovChain& other) const {
  if (index_.size() != other.index_.size()) return false;
  for (const auto& [id, idx] : index_) {
    const auto oidx = other.index_of(id);
    if (!oidx) return false;
    // Compare transition support sets.
    const auto& mine = counts_[idx];
    const auto& theirs = other.counts_[*oidx];
    if (mine.size() != theirs.size()) return false;
    for (const auto& [to, c] : mine) {
      (void)c;
      if (theirs.find(to) == theirs.end()) return false;
    }
  }
  return true;
}

double MarkovChain::log_likelihood(const std::vector<StateId>& seq, double epsilon) const {
  if (seq.size() < 2) return 0.0;
  const Matrix t = transition_matrix();
  double ll = 0.0;
  for (std::size_t i = 1; i < seq.size(); ++i) {
    const auto fi = index_of(seq[i - 1]);
    const auto ti = index_of(seq[i]);
    double p = epsilon;
    if (fi && ti) p = std::max(t(*fi, *ti), epsilon);
    ll += std::log(p);
  }
  return ll;
}

double MarkovChain::entropy_rate() const {
  const Matrix t = transition_matrix();
  const auto occ = occupancy();
  double h = 0.0;
  for (std::size_t i = 0; i < t.rows(); ++i) {
    double row_h = 0.0;
    for (std::size_t j = 0; j < t.cols(); ++j) {
      const double p = t(i, j);
      if (p > 0.0) row_h -= p * std::log(p);
    }
    h += occ[i] * row_h;
  }
  return h;
}

void MarkovChain::save(serialize::Writer& w) const {
  serialize::tag(w, "markov-chain");
  serialize::put_vector(w, ids_);
  for (const auto& row : counts_) {
    serialize::put(w, row.size());
    for (const auto& [to, count] : row) {
      serialize::put(w, to);
      serialize::put(w, count);
    }
  }
  serialize::put(w, visits_.size());
  for (const auto& [id, count] : visits_) {
    serialize::put(w, id);
    serialize::put(w, count);
  }
  serialize::put(w, total_transitions_);
  w.newline();
}

void MarkovChain::save(std::ostream& os) const {
  serialize::TextWriter w(os);
  save(w);
}

MarkovChain MarkovChain::load(serialize::Reader& r) {
  serialize::expect(r, "markov-chain");
  MarkovChain mc;
  mc.ids_ = serialize::get_vector<StateId>(r);
  for (std::size_t i = 0; i < mc.ids_.size(); ++i) mc.index_[mc.ids_[i]] = i;
  mc.counts_.resize(mc.ids_.size());
  for (auto& row : mc.counts_) {
    const auto n = serialize::get<std::size_t>(r);
    for (std::size_t i = 0; i < n; ++i) {
      const auto to = serialize::get<StateId>(r);
      row[to] = serialize::get<std::size_t>(r);
    }
  }
  const auto nv = serialize::get<std::size_t>(r);
  for (std::size_t i = 0; i < nv; ++i) {
    const auto id = serialize::get<StateId>(r);
    mc.visits_[id] = serialize::get<std::size_t>(r);
  }
  mc.total_transitions_ = serialize::get<std::size_t>(r);
  if (mc.index_.size() != mc.ids_.size()) {
    throw std::runtime_error("checkpoint: duplicate markov-chain state ids");
  }
  return mc;
}

MarkovChain MarkovChain::load(std::istream& is) {
  const auto r = serialize::make_reader(is);
  return load(*r);
}

std::string MarkovChain::to_string() const {
  std::ostringstream os;
  const Matrix t = transition_matrix();
  os << "states:";
  for (const StateId id : ids_) os << ' ' << id;
  os << '\n' << t.to_string(3);
  return os.str();
}

}  // namespace sentinel::hmm
