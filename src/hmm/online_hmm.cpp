#include "hmm/online_hmm.h"

#include <stdexcept>

#include "util/kernels.h"
#include "util/serialize.h"

namespace sentinel::hmm {

OnlineHmm::OnlineHmm(OnlineHmmConfig cfg) : cfg_(cfg) {
  if (!(cfg_.beta > 0.0 && cfg_.beta < 1.0)) {
    throw std::invalid_argument("OnlineHmm: beta must be in (0,1)");
  }
  if (!(cfg_.gamma > 0.0 && cfg_.gamma < 1.0)) {
    throw std::invalid_argument("OnlineHmm: gamma must be in (0,1)");
  }
}

std::size_t OnlineHmm::intern_symbol(StateId id) {
  const auto [it, inserted] = symbol_index_.try_emplace(id, symbol_ids_.size());
  if (inserted) {
    symbol_ids_.push_back(id);
    b_.grow(b_.rows(), symbol_ids_.size(), 0.0);
    b_avg_.grow(b_avg_.rows(), symbol_ids_.size(), 0.0);
    symbol_totals_.push_back(0.0);
  }
  return it->second;
}

std::size_t OnlineHmm::intern_hidden(StateId id, StateId first_symbol) {
  const auto [it, inserted] = hidden_index_.try_emplace(id, hidden_ids_.size());
  if (inserted) {
    hidden_ids_.push_back(id);
    // Grow A with a fresh identity row (self-loop) and zero column entries
    // for the existing rows.
    a_.grow(hidden_ids_.size(), hidden_ids_.size(), 0.0);
    a_(hidden_ids_.size() - 1, hidden_ids_.size() - 1) = 1.0;
    a_avg_.grow(hidden_ids_.size(), hidden_ids_.size(), 0.0);
    a_row_counts_.push_back(0.0);
    // Grow B with a delta row on the state's first observed symbol -- the
    // dynamic-state analogue of identity initialization.
    const std::size_t sym = intern_symbol(first_symbol);
    b_.grow(hidden_ids_.size(), symbol_ids_.size(), 0.0);
    b_(hidden_ids_.size() - 1, sym) = 1.0;
    b_avg_.grow(hidden_ids_.size(), symbol_ids_.size(), 0.0);
    b_row_counts_.push_back(0.0);
  }
  return it->second;
}

void OnlineHmm::observe(StateId hidden, StateId symbol) {
  const std::size_t j = intern_hidden(hidden, symbol);
  const std::size_t l = intern_symbol(symbol);

  // The EMA row updates decay the whole row then add the learning rate to
  // the observed column: (1-rate)*row[k] + (k==target ? rate : 0). Entries
  // are probabilities (never -0.0), so decay-then-bump is bit-identical to
  // the literal per-element formula -- checkpoint bytes are unchanged.
  const auto& kk = kern::k();
  if (last_hidden_ && *last_hidden_ != hidden) {
    // Transition update on the previous state's row.
    const std::size_t i = hidden_index_.at(*last_hidden_);
    auto row = a_.row(i);
    kk.scale(row.data(), row.size(), 1.0 - cfg_.beta);
    row[j] += cfg_.beta;
    a_avg_(i, j) += 1.0;
    a_row_counts_[i] += 1.0;
  }

  // Emission update. Row j (current) by default; row i (previous) under the
  // literal reading -- identical whenever the state did not change.
  std::size_t emit_row = j;
  if (cfg_.update_previous_row && last_hidden_) emit_row = hidden_index_.at(*last_hidden_);
  auto brow = b_.row(emit_row);
  kk.scale(brow.data(), brow.size(), 1.0 - cfg_.gamma);
  brow[l] += cfg_.gamma;
  b_avg_(emit_row, l) += 1.0;
  b_row_counts_[emit_row] += 1.0;
  symbol_totals_[l] += 1.0;

  last_hidden_ = hidden;
  avg_dirty_ = true;
  ++steps_;
}

void OnlineHmm::refresh_avg_caches_locked() const {
  const auto& kk = kern::k();
  Matrix a = a_avg_;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    if (a_row_counts_[r] <= 0.0) {
      a(r, r) = 1.0;  // never left: identity row, like the EMA init
      continue;
    }
    auto row = a.row(r);
    kk.div_scale(row.data(), row.size(), a_row_counts_[r]);
  }
  a_avg_cache_ = std::move(a);

  Matrix b = b_avg_;
  for (std::size_t r = 0; r < b.rows(); ++r) {
    if (b_row_counts_[r] <= 0.0) {
      // Never updated: mirror the EMA initialization (delta on the first
      // symbol), which is exactly what b_ still holds for this row.
      for (std::size_t c = 0; c < b.cols(); ++c) b(r, c) = b_(r, c);
      continue;
    }
    auto row = b.row(r);
    kk.div_scale(row.data(), row.size(), b_row_counts_[r]);
  }
  b_avg_cache_ = std::move(b);
  avg_dirty_ = false;
}

Matrix OnlineHmm::transition_matrix_avg() const {
  std::lock_guard<std::mutex> lock(avg_mu_.get());
  if (avg_dirty_) refresh_avg_caches_locked();
  return a_avg_cache_;
}

Matrix OnlineHmm::emission_matrix_avg() const {
  std::lock_guard<std::mutex> lock(avg_mu_.get());
  if (avg_dirty_) refresh_avg_caches_locked();
  return b_avg_cache_;
}

std::optional<std::size_t> OnlineHmm::hidden_index(StateId id) const {
  const auto it = hidden_index_.find(id);
  if (it == hidden_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> OnlineHmm::symbol_index(StateId id) const {
  const auto it = symbol_index_.find(id);
  if (it == symbol_index_.end()) return std::nullopt;
  return it->second;
}

double OnlineHmm::transition(StateId from, StateId to) const {
  const auto fi = hidden_index(from);
  const auto ti = hidden_index(to);
  if (!fi || !ti) return 0.0;
  return a_(*fi, *ti);
}

double OnlineHmm::emission(StateId hidden, StateId symbol) const {
  const auto hi = hidden_index(hidden);
  const auto si = symbol_index(symbol);
  if (!hi || !si) return 0.0;
  return b_(*hi, *si);
}


void OnlineHmm::save(serialize::Writer& w) const {
  serialize::tag(w, "online-hmm");
  serialize::put_vector(w, hidden_ids_);
  serialize::put_vector(w, symbol_ids_);
  serialize::put_matrix(w, a_);
  serialize::put_matrix(w, b_);
  serialize::put_matrix(w, a_avg_);
  serialize::put_matrix(w, b_avg_);
  serialize::put_vector(w, a_row_counts_);
  serialize::put_vector(w, b_row_counts_);
  serialize::put_vector(w, symbol_totals_);
  serialize::put(w, last_hidden_.has_value());
  serialize::put(w, last_hidden_.value_or(0));
  serialize::put(w, steps_);
  w.newline();
}

void OnlineHmm::save(std::ostream& os) const {
  serialize::TextWriter w(os);
  save(w);
}

OnlineHmm OnlineHmm::load(OnlineHmmConfig cfg, serialize::Reader& r) {
  serialize::expect(r, "online-hmm");
  OnlineHmm m(cfg);
  m.hidden_ids_ = serialize::get_vector<StateId>(r);
  m.symbol_ids_ = serialize::get_vector<StateId>(r);
  for (std::size_t i = 0; i < m.hidden_ids_.size(); ++i) m.hidden_index_[m.hidden_ids_[i]] = i;
  for (std::size_t i = 0; i < m.symbol_ids_.size(); ++i) m.symbol_index_[m.symbol_ids_[i]] = i;
  m.a_ = serialize::get_matrix(r);
  m.b_ = serialize::get_matrix(r);
  m.a_avg_ = serialize::get_matrix(r);
  m.b_avg_ = serialize::get_matrix(r);
  m.a_row_counts_ = serialize::get_vector<double>(r);
  m.b_row_counts_ = serialize::get_vector<double>(r);
  m.symbol_totals_ = serialize::get_vector<double>(r);
  const bool has_last = serialize::get_bool(r);
  const auto last = serialize::get<StateId>(r);
  if (has_last) m.last_hidden_ = last;
  m.steps_ = serialize::get<std::size_t>(r);

  const std::size_t h = m.hidden_ids_.size();
  const std::size_t sy = m.symbol_ids_.size();
  const bool shapes_ok = m.a_.rows() == h && m.a_.cols() == h && m.b_.rows() == h &&
                         m.b_.cols() == sy && m.a_avg_.rows() == h && m.b_avg_.rows() == h &&
                         m.a_row_counts_.size() == h && m.b_row_counts_.size() == h &&
                         m.symbol_totals_.size() == sy &&
                         m.hidden_index_.size() == h && m.symbol_index_.size() == sy;
  if (!shapes_ok) throw std::runtime_error("checkpoint: inconsistent online-hmm shapes");
  return m;
}

OnlineHmm OnlineHmm::load(OnlineHmmConfig cfg, std::istream& is) {
  const auto r = serialize::make_reader(is);
  return load(cfg, *r);
}

}  // namespace sentinel::hmm
