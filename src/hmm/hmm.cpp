#include "hmm/hmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/kernels.h"
#include "util/serialize.h"

namespace sentinel::hmm {

namespace {

void check_distribution(const std::vector<double>& p, const char* what) {
  double s = 0.0;
  for (const double x : p) {
    if (x < -1e-12 || x > 1.0 + 1e-12) throw std::invalid_argument(std::string(what) + ": entry out of [0,1]");
    s += x;
  }
  if (std::abs(s - 1.0) > 1e-6) throw std::invalid_argument(std::string(what) + ": does not sum to 1");
}

}  // namespace

Hmm::Hmm(Matrix a, Matrix b, std::vector<double> pi)
    : a_(std::move(a)), b_(std::move(b)), pi_(std::move(pi)) {
  validate();
}

void Hmm::validate() const {
  if (a_.rows() == 0 || a_.rows() != a_.cols()) throw std::invalid_argument("Hmm: A must be square, nonempty");
  if (b_.rows() != a_.rows() || b_.cols() == 0) throw std::invalid_argument("Hmm: B shape mismatch");
  if (pi_.size() != a_.rows()) throw std::invalid_argument("Hmm: pi length mismatch");
  if (!a_.is_row_stochastic(1e-6)) throw std::invalid_argument("Hmm: A not row-stochastic");
  if (!b_.is_row_stochastic(1e-6)) throw std::invalid_argument("Hmm: B not row-stochastic");
  check_distribution(pi_, "Hmm: pi");
}

Hmm Hmm::uniform(std::size_t num_states, std::size_t num_symbols) {
  if (num_states == 0 || num_symbols == 0) throw std::invalid_argument("Hmm::uniform: zero size");
  Matrix a(num_states, num_states, 1.0 / static_cast<double>(num_states));
  Matrix b(num_states, num_symbols, 1.0 / static_cast<double>(num_symbols));
  std::vector<double> pi(num_states, 1.0 / static_cast<double>(num_states));
  return Hmm(std::move(a), std::move(b), std::move(pi));
}

Hmm Hmm::random(std::size_t num_states, std::size_t num_symbols, Rng& rng) {
  if (num_states == 0 || num_symbols == 0) throw std::invalid_argument("Hmm::random: zero size");
  Matrix a(num_states, num_states);
  Matrix b(num_states, num_symbols);
  for (std::size_t i = 0; i < num_states; ++i) {
    for (std::size_t j = 0; j < num_states; ++j) a(i, j) = rng.uniform(0.1, 1.0);
    for (std::size_t k = 0; k < num_symbols; ++k) b(i, k) = rng.uniform(0.1, 1.0);
  }
  a.normalize_rows();
  b.normalize_rows();
  std::vector<double> pi(num_states);
  double s = 0.0;
  for (double& x : pi) {
    x = rng.uniform(0.1, 1.0);
    s += x;
  }
  for (double& x : pi) x /= s;
  return Hmm(std::move(a), std::move(b), std::move(pi));
}

ForwardResult Hmm::forward(const Sequence& obs) const {
  if (obs.empty()) throw std::invalid_argument("Hmm::forward: empty sequence");
  const std::size_t t_len = obs.size();
  const std::size_t m = num_states();

  ForwardResult r;
  r.scaled_alpha = Matrix(t_len, m);
  r.scales.resize(t_len);

  for (const std::size_t o : obs) {
    if (o >= num_symbols()) throw std::out_of_range("Hmm::forward: symbol out of range");
  }

  // B transposed once per pass: row o of bt is the emission column b(:, o),
  // so each time step streams one contiguous row instead of a strided column.
  const auto& kk = kern::k();
  const Matrix bt = b_.transposed();
  const std::size_t astride = a_.stride();
  const std::size_t bstride = bt.stride();

  // t = 0: alpha_hat(0, i) = pi_i * b_i(o_0), rescaled to sum to 1.
  double* a0 = r.scaled_alpha.data();
  kk.mul(a0, pi_.data(), bt.data() + obs[0] * bstride, m);
  r.scales[0] = kk.normalize(a0, m);

  for (std::size_t t = 1; t < t_len; ++t) {
    const double* prev = r.scaled_alpha.data() + (t - 1) * r.scaled_alpha.stride();
    double* cur = r.scaled_alpha.data() + t * r.scaled_alpha.stride();
    // cur[j] = sum_i alpha_hat(t-1, i) a(i, j), accumulated row-by-row in
    // ascending i -- the same per-output addition order as the classic
    // nested loop.
    kk.vec_mat(prev, a_.data(), m, m, astride, cur);
    kk.mul(cur, cur, bt.data() + obs[t] * bstride, m);
    r.scales[t] = kk.normalize(cur, m);
  }

  double ll = 0.0;
  for (const double c : r.scales) ll -= std::log(c);
  r.log_likelihood = ll;
  return r;
}

Matrix Hmm::backward(const Sequence& obs, const std::vector<double>& scales) const {
  if (obs.empty()) throw std::invalid_argument("Hmm::backward: empty sequence");
  if (scales.size() != obs.size()) throw std::invalid_argument("Hmm::backward: scales mismatch");
  const std::size_t t_len = obs.size();
  const std::size_t m = num_states();

  const auto& kk = kern::k();
  const Matrix bt = b_.transposed();
  Matrix beta(t_len, m);
  double* last = beta.data() + (t_len - 1) * beta.stride();
  std::fill(last, last + m, scales[t_len - 1]);

  std::vector<double> tmp(m);
  for (std::size_t t = t_len - 1; t-- > 0;) {
    const double* next = beta.data() + (t + 1) * beta.stride();
    double* cur = beta.data() + t * beta.stride();
    // tmp[j] = b_j(o_{t+1}) * beta_hat(t+1, j) is shared by every i, so the
    // inner recursion collapses to one row-dot per state.
    kk.mul(tmp.data(), bt.data() + obs[t + 1] * bt.stride(), next, m);
    kk.mat_vec(a_.data(), tmp.data(), m, m, a_.stride(), cur);
    kk.scale(cur, m, scales[t]);
  }
  return beta;
}

double Hmm::log_likelihood(const Sequence& obs) const { return forward(obs).log_likelihood; }

double Hmm::normalized_log_likelihood(const Sequence& obs) const {
  return log_likelihood(obs) / static_cast<double>(obs.size());
}

ViterbiResult Hmm::viterbi(const Sequence& obs) const {
  if (obs.empty()) throw std::invalid_argument("Hmm::viterbi: empty sequence");
  const std::size_t t_len = obs.size();
  const std::size_t m = num_states();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const auto safe_log = [](double x) { return x > 0.0 ? std::log(x) : kNegInf; };

  // log() is the dominant cost of the recursion; taking it once per matrix
  // entry instead of inside the O(T*m^2) loop drops T redundant evaluations
  // per entry without changing a single arithmetic result (same doubles, in
  // the same order). The tables are built *transposed* -- log_at row j holds
  // log a(:, j), log_bt row k holds log b(:, k) -- so the recursion streams
  // contiguous rows through the max_plus kernel, whose strict-> striped
  // argmax reproduces the sequential first-max index exactly (kernels.h).
  const auto& kk = kern::k();
  const std::size_t n = num_symbols();
  Matrix log_at(m, m, kNegInf);
  Matrix log_bt(n, m, kNegInf);
  std::vector<double> log_pi(m, kNegInf);
  for (std::size_t i = 0; i < m; ++i) {
    log_pi[i] = safe_log(pi_[i]);
    for (std::size_t j = 0; j < m; ++j) log_at(j, i) = safe_log(a_(i, j));
    for (std::size_t k = 0; k < n; ++k) log_bt(k, i) = safe_log(b_(i, k));
  }

  Matrix delta(t_len, m, kNegInf);
  std::vector<std::size_t> psi(t_len * m, 0);

  if (obs[0] >= n) throw std::out_of_range("Hmm::viterbi: symbol out of range");
  {
    const double* lb = log_bt.data() + obs[0] * log_bt.stride();
    double* d0 = delta.data();
    for (std::size_t i = 0; i < m; ++i) d0[i] = log_pi[i] + lb[i];
  }
  for (std::size_t t = 1; t < t_len; ++t) {
    if (obs[t] >= n) throw std::out_of_range("Hmm::viterbi: symbol out of range");
    const double* prev = delta.data() + (t - 1) * delta.stride();
    double* cur = delta.data() + t * delta.stride();
    const double* lb = log_bt.data() + obs[t] * log_bt.stride();
    for (std::size_t j = 0; j < m; ++j) {
      const auto mp = kk.max_plus(prev, log_at.data() + j * log_at.stride(), m);
      cur[j] = mp.value + lb[j];
      psi[t * m + j] = mp.index;
    }
  }

  ViterbiResult r;
  r.path.resize(t_len);
  double best = kNegInf;
  for (std::size_t i = 0; i < m; ++i) {
    if (delta(t_len - 1, i) > best) {
      best = delta(t_len - 1, i);
      r.path[t_len - 1] = i;
    }
  }
  r.log_probability = best;
  for (std::size_t t = t_len - 1; t-- > 0;) {
    r.path[t] = psi[(t + 1) * m + r.path[t + 1]];
  }
  return r;
}

Matrix Hmm::posterior(const Sequence& obs) const {
  const auto fwd = forward(obs);
  const Matrix beta = backward(obs, fwd.scales);
  const auto& kk = kern::k();
  const std::size_t m = num_states();
  Matrix gamma(obs.size(), m);
  for (std::size_t t = 0; t < obs.size(); ++t) {
    double* g = gamma.data() + t * gamma.stride();
    kk.mul(g, fwd.scaled_alpha.data() + t * fwd.scaled_alpha.stride(),
           beta.data() + t * beta.stride(), m);
    kk.div_scale(g, m, fwd.scales[t]);
    const double norm = kk.sum(g, m);
    if (norm > 0.0) kk.div_scale(g, m, norm);
  }
  return gamma;
}

BaumWelchResult Hmm::baum_welch(const std::vector<Sequence>& sequences,
                                const BaumWelchOptions& opts) {
  if (sequences.empty()) throw std::invalid_argument("Hmm::baum_welch: no sequences");
  for (const auto& s : sequences) {
    if (s.empty()) throw std::invalid_argument("Hmm::baum_welch: empty sequence");
  }
  const std::size_t m = num_states();
  const std::size_t n = num_symbols();

  BaumWelchResult result;
  double prev_ll = -std::numeric_limits<double>::infinity();

  // Scratch reused across every (iteration, sequence, t): the E-step inner
  // loops run allocation-free.
  const auto& kk = kern::k();
  std::vector<double> g(m);
  std::vector<double> tmp(m);
  std::vector<double> row_dots(m);

  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    Matrix a_num(m, m, 0.0);
    std::vector<double> a_den(m, 0.0);
    // b accumulator is kept transposed (row k = symbol k) so each time step
    // updates one contiguous row with axpy.
    Matrix bt_num(n, m, 0.0);
    std::vector<double> b_den(m, 0.0);
    std::vector<double> pi_acc(m, 0.0);
    double total_ll = 0.0;
    const Matrix bt = b_.transposed();

    for (const auto& obs : sequences) {
      const auto fwd = forward(obs);
      const auto beta = backward(obs, fwd.scales);
      total_ll += fwd.log_likelihood;
      const std::size_t t_len = obs.size();

      // gamma(t,i) proportional to alpha_hat(t,i) * beta_hat(t,i) / c_t;
      // with this scaling it is already normalized per t after dividing by
      // the row sum (numerically safer than relying on exact cancellation).
      for (std::size_t t = 0; t < t_len; ++t) {
        kk.mul(g.data(), fwd.scaled_alpha.data() + t * fwd.scaled_alpha.stride(),
               beta.data() + t * beta.stride(), m);
        kk.div_scale(g.data(), m, fwd.scales[t]);
        const double norm = kk.sum(g.data(), m);
        if (norm <= 0.0) continue;
        kk.div_scale(g.data(), m, norm);
        if (t == 0) kk.axpy(pi_acc.data(), g.data(), m, 1.0);
        kk.axpy(bt_num.data() + obs[t] * bt_num.stride(), g.data(), m, 1.0);
        kk.axpy(b_den.data(), g.data(), m, 1.0);
        if (t + 1 < t_len) kk.axpy(a_den.data(), g.data(), m, 1.0);
      }

      // xi(t,i,j) proportional to alpha_hat(t,i) a_ij b_j(o_{t+1}) beta_hat(t+1,j).
      // tmp[j] = b_j(o_{t+1}) beta_hat(t+1,j) is independent of i, so
      // sum_j xi(t,i,j) collapses to alpha_hat(t,i) * <a_row_i, tmp> and the
      // accumulation into a_num to one fused multiply-axpy per row -- xi is
      // never materialized.
      for (std::size_t t = 0; t + 1 < t_len; ++t) {
        const double* alpha_t = fwd.scaled_alpha.data() + t * fwd.scaled_alpha.stride();
        kk.mul(tmp.data(), bt.data() + obs[t + 1] * bt.stride(),
               beta.data() + (t + 1) * beta.stride(), m);
        double norm = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          row_dots[i] = kk.dot(a_.data() + i * a_.stride(), tmp.data(), m);
          norm += alpha_t[i] * row_dots[i];
        }
        if (norm <= 0.0) continue;
        const double inv = 1.0 / norm;
        for (std::size_t i = 0; i < m; ++i) {
          kk.mul_axpy(a_num.data() + i * a_num.stride(), a_.data() + i * a_.stride(),
                      tmp.data(), m, alpha_t[i] * inv);
        }
      }
    }

    result.log_likelihood_per_iter.push_back(total_ll);
    result.iterations = iter + 1;

    // M-step.
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        a_(i, j) = a_den[i] > 0.0 ? a_num(i, j) / a_den[i] : a_(i, j);
        a_(i, j) = std::max(a_(i, j), opts.floor);
      }
      for (std::size_t k = 0; k < n; ++k) {
        b_(i, k) = b_den[i] > 0.0 ? bt_num(k, i) / b_den[i] : b_(i, k);
        b_(i, k) = std::max(b_(i, k), opts.floor);
      }
    }
    a_.normalize_rows();
    b_.normalize_rows();
    double pi_sum = 0.0;
    for (const double x : pi_acc) pi_sum += x;
    if (pi_sum > 0.0) {
      for (std::size_t i = 0; i < m; ++i) pi_[i] = std::max(pi_acc[i] / pi_sum, opts.floor);
      double s = 0.0;
      for (const double x : pi_) s += x;
      for (double& x : pi_) x /= s;
    }

    if (iter > 0 && total_ll - prev_ll < opts.tolerance) {
      result.converged = true;
      break;
    }
    prev_ll = total_ll;
  }
  return result;
}

void Hmm::save(serialize::Writer& w) const {
  serialize::tag(w, "hmm");
  serialize::put_matrix(w, a_);
  serialize::put_matrix(w, b_);
  serialize::put_vector(w, pi_);
  w.newline();
}

void Hmm::save(std::ostream& os) const {
  serialize::TextWriter w(os);
  save(w);
}

Hmm Hmm::load(serialize::Reader& r) {
  serialize::expect(r, "hmm");
  Matrix a = serialize::get_matrix(r);
  Matrix b = serialize::get_matrix(r);
  auto pi = serialize::get_vector<double>(r);
  return Hmm(std::move(a), std::move(b), std::move(pi));
}

Hmm Hmm::load(std::istream& is) {
  const auto r = serialize::make_reader(is);
  return load(*r);
}

Hmm::Sample Hmm::sample(std::size_t length, Rng& rng) const {
  if (length == 0) throw std::invalid_argument("Hmm::sample: zero length");
  Sample s;
  s.states.resize(length);
  s.symbols.resize(length);

  s.states[0] = rng.categorical(pi_);
  for (std::size_t t = 0; t < length; ++t) {
    if (t > 0) {
      const auto row = a_.row(s.states[t - 1]);
      s.states[t] = rng.categorical(std::vector<double>(row.begin(), row.end()));
    }
    const auto row = b_.row(s.states[t]);
    s.symbols[t] = rng.categorical(std::vector<double>(row.begin(), row.end()));
  }
  return s;
}

}  // namespace sentinel::hmm
