#include "hmm/hmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/serialize.h"

namespace sentinel::hmm {

namespace {

void check_distribution(const std::vector<double>& p, const char* what) {
  double s = 0.0;
  for (const double x : p) {
    if (x < -1e-12 || x > 1.0 + 1e-12) throw std::invalid_argument(std::string(what) + ": entry out of [0,1]");
    s += x;
  }
  if (std::abs(s - 1.0) > 1e-6) throw std::invalid_argument(std::string(what) + ": does not sum to 1");
}

}  // namespace

Hmm::Hmm(Matrix a, Matrix b, std::vector<double> pi)
    : a_(std::move(a)), b_(std::move(b)), pi_(std::move(pi)) {
  validate();
}

void Hmm::validate() const {
  if (a_.rows() == 0 || a_.rows() != a_.cols()) throw std::invalid_argument("Hmm: A must be square, nonempty");
  if (b_.rows() != a_.rows() || b_.cols() == 0) throw std::invalid_argument("Hmm: B shape mismatch");
  if (pi_.size() != a_.rows()) throw std::invalid_argument("Hmm: pi length mismatch");
  if (!a_.is_row_stochastic(1e-6)) throw std::invalid_argument("Hmm: A not row-stochastic");
  if (!b_.is_row_stochastic(1e-6)) throw std::invalid_argument("Hmm: B not row-stochastic");
  check_distribution(pi_, "Hmm: pi");
}

Hmm Hmm::uniform(std::size_t num_states, std::size_t num_symbols) {
  if (num_states == 0 || num_symbols == 0) throw std::invalid_argument("Hmm::uniform: zero size");
  Matrix a(num_states, num_states, 1.0 / static_cast<double>(num_states));
  Matrix b(num_states, num_symbols, 1.0 / static_cast<double>(num_symbols));
  std::vector<double> pi(num_states, 1.0 / static_cast<double>(num_states));
  return Hmm(std::move(a), std::move(b), std::move(pi));
}

Hmm Hmm::random(std::size_t num_states, std::size_t num_symbols, Rng& rng) {
  if (num_states == 0 || num_symbols == 0) throw std::invalid_argument("Hmm::random: zero size");
  Matrix a(num_states, num_states);
  Matrix b(num_states, num_symbols);
  for (std::size_t i = 0; i < num_states; ++i) {
    for (std::size_t j = 0; j < num_states; ++j) a(i, j) = rng.uniform(0.1, 1.0);
    for (std::size_t k = 0; k < num_symbols; ++k) b(i, k) = rng.uniform(0.1, 1.0);
  }
  a.normalize_rows();
  b.normalize_rows();
  std::vector<double> pi(num_states);
  double s = 0.0;
  for (double& x : pi) {
    x = rng.uniform(0.1, 1.0);
    s += x;
  }
  for (double& x : pi) x /= s;
  return Hmm(std::move(a), std::move(b), std::move(pi));
}

ForwardResult Hmm::forward(const Sequence& obs) const {
  if (obs.empty()) throw std::invalid_argument("Hmm::forward: empty sequence");
  const std::size_t t_len = obs.size();
  const std::size_t m = num_states();

  ForwardResult r;
  r.scaled_alpha = Matrix(t_len, m);
  r.scales.resize(t_len);

  for (const std::size_t o : obs) {
    if (o >= num_symbols()) throw std::out_of_range("Hmm::forward: symbol out of range");
  }

  // t = 0
  double c0 = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double v = pi_[i] * b_(i, obs[0]);
    r.scaled_alpha(0, i) = v;
    c0 += v;
  }
  if (c0 <= 0.0) c0 = std::numeric_limits<double>::min();
  r.scales[0] = 1.0 / c0;
  for (std::size_t i = 0; i < m; ++i) r.scaled_alpha(0, i) *= r.scales[0];

  for (std::size_t t = 1; t < t_len; ++t) {
    double ct = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < m; ++i) s += r.scaled_alpha(t - 1, i) * a_(i, j);
      const double v = s * b_(j, obs[t]);
      r.scaled_alpha(t, j) = v;
      ct += v;
    }
    if (ct <= 0.0) ct = std::numeric_limits<double>::min();
    r.scales[t] = 1.0 / ct;
    for (std::size_t j = 0; j < m; ++j) r.scaled_alpha(t, j) *= r.scales[t];
  }

  double ll = 0.0;
  for (const double c : r.scales) ll -= std::log(c);
  r.log_likelihood = ll;
  return r;
}

Matrix Hmm::backward(const Sequence& obs, const std::vector<double>& scales) const {
  if (obs.empty()) throw std::invalid_argument("Hmm::backward: empty sequence");
  if (scales.size() != obs.size()) throw std::invalid_argument("Hmm::backward: scales mismatch");
  const std::size_t t_len = obs.size();
  const std::size_t m = num_states();

  Matrix beta(t_len, m);
  for (std::size_t i = 0; i < m; ++i) beta(t_len - 1, i) = scales[t_len - 1];

  for (std::size_t t = t_len - 1; t-- > 0;) {
    for (std::size_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        s += a_(i, j) * b_(j, obs[t + 1]) * beta(t + 1, j);
      }
      beta(t, i) = s * scales[t];
    }
  }
  return beta;
}

double Hmm::log_likelihood(const Sequence& obs) const { return forward(obs).log_likelihood; }

double Hmm::normalized_log_likelihood(const Sequence& obs) const {
  return log_likelihood(obs) / static_cast<double>(obs.size());
}

ViterbiResult Hmm::viterbi(const Sequence& obs) const {
  if (obs.empty()) throw std::invalid_argument("Hmm::viterbi: empty sequence");
  const std::size_t t_len = obs.size();
  const std::size_t m = num_states();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const auto safe_log = [](double x) { return x > 0.0 ? std::log(x) : kNegInf; };

  // log() is the dominant cost of the recursion; taking it once per matrix
  // entry instead of inside the O(T*m^2) loop drops T redundant evaluations
  // per entry without changing a single arithmetic result (same doubles, in
  // the same order).
  Matrix log_a(m, m, kNegInf);
  Matrix log_b(m, num_symbols(), kNegInf);
  std::vector<double> log_pi(m, kNegInf);
  for (std::size_t i = 0; i < m; ++i) {
    log_pi[i] = safe_log(pi_[i]);
    for (std::size_t j = 0; j < m; ++j) log_a(i, j) = safe_log(a_(i, j));
    for (std::size_t k = 0; k < num_symbols(); ++k) log_b(i, k) = safe_log(b_(i, k));
  }

  Matrix delta(t_len, m, kNegInf);
  std::vector<std::vector<std::size_t>> psi(t_len, std::vector<std::size_t>(m, 0));

  if (obs[0] >= num_symbols()) throw std::out_of_range("Hmm::viterbi: symbol out of range");
  for (std::size_t i = 0; i < m; ++i) {
    delta(0, i) = log_pi[i] + log_b(i, obs[0]);
  }
  for (std::size_t t = 1; t < t_len; ++t) {
    if (obs[t] >= num_symbols()) throw std::out_of_range("Hmm::viterbi: symbol out of range");
    for (std::size_t j = 0; j < m; ++j) {
      double best = kNegInf;
      std::size_t arg = 0;
      for (std::size_t i = 0; i < m; ++i) {
        const double v = delta(t - 1, i) + log_a(i, j);
        if (v > best) {
          best = v;
          arg = i;
        }
      }
      delta(t, j) = best + log_b(j, obs[t]);
      psi[t][j] = arg;
    }
  }

  ViterbiResult r;
  r.path.resize(t_len);
  double best = kNegInf;
  for (std::size_t i = 0; i < m; ++i) {
    if (delta(t_len - 1, i) > best) {
      best = delta(t_len - 1, i);
      r.path[t_len - 1] = i;
    }
  }
  r.log_probability = best;
  for (std::size_t t = t_len - 1; t-- > 0;) {
    r.path[t] = psi[t + 1][r.path[t + 1]];
  }
  return r;
}

Matrix Hmm::posterior(const Sequence& obs) const {
  const auto fwd = forward(obs);
  const Matrix beta = backward(obs, fwd.scales);
  Matrix gamma(obs.size(), num_states());
  for (std::size_t t = 0; t < obs.size(); ++t) {
    double norm = 0.0;
    for (std::size_t i = 0; i < num_states(); ++i) {
      gamma(t, i) = fwd.scaled_alpha(t, i) * beta(t, i) / fwd.scales[t];
      norm += gamma(t, i);
    }
    if (norm > 0.0) {
      for (std::size_t i = 0; i < num_states(); ++i) gamma(t, i) /= norm;
    }
  }
  return gamma;
}

BaumWelchResult Hmm::baum_welch(const std::vector<Sequence>& sequences,
                                const BaumWelchOptions& opts) {
  if (sequences.empty()) throw std::invalid_argument("Hmm::baum_welch: no sequences");
  for (const auto& s : sequences) {
    if (s.empty()) throw std::invalid_argument("Hmm::baum_welch: empty sequence");
  }
  const std::size_t m = num_states();
  const std::size_t n = num_symbols();

  BaumWelchResult result;
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    Matrix a_num(m, m, 0.0);
    std::vector<double> a_den(m, 0.0);
    Matrix b_num(m, n, 0.0);
    std::vector<double> b_den(m, 0.0);
    std::vector<double> pi_acc(m, 0.0);
    double total_ll = 0.0;

    for (const auto& obs : sequences) {
      const auto fwd = forward(obs);
      const auto beta = backward(obs, fwd.scales);
      total_ll += fwd.log_likelihood;
      const std::size_t t_len = obs.size();

      // gamma(t,i) proportional to alpha_hat(t,i) * beta_hat(t,i) / c_t;
      // with this scaling it is already normalized per t after dividing by
      // the row sum (numerically safer than relying on exact cancellation).
      for (std::size_t t = 0; t < t_len; ++t) {
        double norm = 0.0;
        std::vector<double> g(m);
        for (std::size_t i = 0; i < m; ++i) {
          g[i] = fwd.scaled_alpha(t, i) * beta(t, i) / fwd.scales[t];
          norm += g[i];
        }
        if (norm <= 0.0) continue;
        for (std::size_t i = 0; i < m; ++i) {
          const double gi = g[i] / norm;
          if (t == 0) pi_acc[i] += gi;
          b_num(i, obs[t]) += gi;
          b_den[i] += gi;
          if (t + 1 < t_len) a_den[i] += gi;
        }
      }

      // xi(t,i,j) proportional to alpha_hat(t,i) a_ij b_j(o_{t+1}) beta_hat(t+1,j).
      for (std::size_t t = 0; t + 1 < t_len; ++t) {
        double norm = 0.0;
        Matrix xi(m, m);
        for (std::size_t i = 0; i < m; ++i) {
          for (std::size_t j = 0; j < m; ++j) {
            const double v =
                fwd.scaled_alpha(t, i) * a_(i, j) * b_(j, obs[t + 1]) * beta(t + 1, j);
            xi(i, j) = v;
            norm += v;
          }
        }
        if (norm <= 0.0) continue;
        for (std::size_t i = 0; i < m; ++i) {
          for (std::size_t j = 0; j < m; ++j) a_num(i, j) += xi(i, j) / norm;
        }
      }
    }

    result.log_likelihood_per_iter.push_back(total_ll);
    result.iterations = iter + 1;

    // M-step.
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        a_(i, j) = a_den[i] > 0.0 ? a_num(i, j) / a_den[i] : a_(i, j);
        a_(i, j) = std::max(a_(i, j), opts.floor);
      }
      for (std::size_t k = 0; k < n; ++k) {
        b_(i, k) = b_den[i] > 0.0 ? b_num(i, k) / b_den[i] : b_(i, k);
        b_(i, k) = std::max(b_(i, k), opts.floor);
      }
    }
    a_.normalize_rows();
    b_.normalize_rows();
    double pi_sum = 0.0;
    for (const double x : pi_acc) pi_sum += x;
    if (pi_sum > 0.0) {
      for (std::size_t i = 0; i < m; ++i) pi_[i] = std::max(pi_acc[i] / pi_sum, opts.floor);
      double s = 0.0;
      for (const double x : pi_) s += x;
      for (double& x : pi_) x /= s;
    }

    if (iter > 0 && total_ll - prev_ll < opts.tolerance) {
      result.converged = true;
      break;
    }
    prev_ll = total_ll;
  }
  return result;
}

void Hmm::save(serialize::Writer& w) const {
  serialize::tag(w, "hmm");
  serialize::put_matrix(w, a_);
  serialize::put_matrix(w, b_);
  serialize::put_vector(w, pi_);
  w.newline();
}

void Hmm::save(std::ostream& os) const {
  serialize::TextWriter w(os);
  save(w);
}

Hmm Hmm::load(serialize::Reader& r) {
  serialize::expect(r, "hmm");
  Matrix a = serialize::get_matrix(r);
  Matrix b = serialize::get_matrix(r);
  auto pi = serialize::get_vector<double>(r);
  return Hmm(std::move(a), std::move(b), std::move(pi));
}

Hmm Hmm::load(std::istream& is) {
  const auto r = serialize::make_reader(is);
  return load(*r);
}

Hmm::Sample Hmm::sample(std::size_t length, Rng& rng) const {
  if (length == 0) throw std::invalid_argument("Hmm::sample: zero length");
  Sample s;
  s.states.resize(length);
  s.symbols.resize(length);

  s.states[0] = rng.categorical(pi_);
  for (std::size_t t = 0; t < length; ++t) {
    if (t > 0) {
      const auto row = a_.row(s.states[t - 1]);
      s.states[t] = rng.categorical(std::vector<double>(row.begin(), row.end()));
    }
    const auto row = b_.row(s.states[t]);
    s.symbols[t] = rng.categorical(std::vector<double>(row.begin(), row.end()));
  }
  return s;
}

}  // namespace sentinel::hmm
