#include "hmm/hmm_slab.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/kernels.h"
#include "util/metrics.h"

namespace sentinel::hmm {

namespace {
constexpr std::size_t kInitialLanes = 8;
constexpr std::size_t kInitialStates = 4;
constexpr double kRowSumTol = 1e-6;
}  // namespace

OnlineHmmSlab::OnlineHmmSlab(OnlineHmmConfig cfg) : cfg_(cfg) {
  if (!(cfg_.beta > 0.0 && cfg_.beta < 1.0)) {
    throw std::invalid_argument("OnlineHmmSlab: beta must be in (0,1)");
  }
  if (!(cfg_.gamma > 0.0 && cfg_.gamma < 1.0)) {
    throw std::invalid_argument("OnlineHmmSlab: gamma must be in (0,1)");
  }
  h_cap_ = kInitialStates;
  s_cap_ = kInitialStates;
  hs_ = kern::padded(h_cap_);
  ss_ = kern::padded(s_cap_);
}

void OnlineHmmSlab::grow_lanes(std::size_t need) {
  const std::size_t old = lane_cap_;
  lane_cap_ = std::max(need, std::max(kInitialLanes, old * 2));
  a_.resize(lane_cap_ * a_tile(), 0.0);
  a_avg_.resize(lane_cap_ * a_tile(), 0.0);
  b_.resize(lane_cap_ * b_tile(), 0.0);
  b_avg_.resize(lane_cap_ * b_tile(), 0.0);
  hidden_ids_.resize(lane_cap_ * h_cap_, 0);
  symbol_ids_.resize(lane_cap_ * s_cap_, 0);
  a_row_counts_.resize(lane_cap_ * h_cap_, 0.0);
  b_row_counts_.resize(lane_cap_ * h_cap_, 0.0);
  symbol_totals_.resize(lane_cap_ * s_cap_, 0.0);
  n_hidden_.resize(lane_cap_, 0);
  n_symbols_.resize(lane_cap_, 0);
  last_hidden_.resize(lane_cap_, 0);
  has_last_.resize(lane_cap_, 0);
  in_use_.resize(lane_cap_, 0);
  steps_.resize(lane_cap_, 0);
  pending_in_lane_.resize(lane_cap_, 0);
  // Descending push so lanes are claimed in ascending order.
  for (std::size_t l = lane_cap_; l > old; --l) {
    free_lanes_.push_back(static_cast<std::uint32_t>(l - 1));
  }
}

std::uint32_t OnlineHmmSlab::open_lane() {
  if (free_lanes_.empty()) grow_lanes(lane_cap_ + 1);
  const std::uint32_t lane = free_lanes_.back();
  free_lanes_.pop_back();
  in_use_[lane] = 1;
  ++lanes_in_use_;
  return lane;
}

void OnlineHmmSlab::clear_lane(std::uint32_t lane) {
  const std::size_t h = n_hidden_[lane];
  const std::size_t s = n_symbols_[lane];
  for (std::size_t r = 0; r < h; ++r) {
    std::memset(a_row(lane, r), 0, hs_ * sizeof(double));
    std::memset(a_avg_.data() + lane * a_tile() + r * hs_, 0, hs_ * sizeof(double));
    std::memset(b_row(lane, r), 0, ss_ * sizeof(double));
    std::memset(b_avg_.data() + lane * b_tile() + r * ss_, 0, ss_ * sizeof(double));
  }
  std::fill_n(hidden_ids_.begin() + static_cast<std::ptrdiff_t>(lane * h_cap_), h, 0);
  std::fill_n(symbol_ids_.begin() + static_cast<std::ptrdiff_t>(lane * s_cap_), s, 0);
  std::fill_n(a_row_counts_.begin() + static_cast<std::ptrdiff_t>(lane * h_cap_), h, 0.0);
  std::fill_n(b_row_counts_.begin() + static_cast<std::ptrdiff_t>(lane * h_cap_), h, 0.0);
  std::fill_n(symbol_totals_.begin() + static_cast<std::ptrdiff_t>(lane * s_cap_), s, 0.0);
  n_hidden_[lane] = 0;
  n_symbols_[lane] = 0;
  last_hidden_[lane] = 0;
  has_last_[lane] = 0;
  steps_[lane] = 0;
}

void OnlineHmmSlab::free_lane(std::uint32_t lane) {
  if (lane >= lane_cap_ || in_use_[lane] == 0) {
    throw std::logic_error("OnlineHmmSlab::free_lane: lane not in use");
  }
  if (pending_in_lane_[lane] != 0) {
    throw std::logic_error("OnlineHmmSlab::free_lane: lane has pending updates");
  }
  clear_lane(lane);
  in_use_[lane] = 0;
  --lanes_in_use_;
  free_lanes_.push_back(lane);
}

std::size_t OnlineHmmSlab::index_of_hidden(std::uint32_t lane, StateId id) const {
  const StateId* seg = hidden_ids_.data() + lane * h_cap_;
  const std::size_t n = n_hidden_[lane];
  for (std::size_t i = 0; i < n; ++i) {
    if (seg[i] == id) return i;
  }
  throw std::logic_error("OnlineHmmSlab: last-hidden id not interned");
}

std::size_t OnlineHmmSlab::intern_symbol(std::uint32_t lane, StateId id) {
  const StateId* seg = symbol_ids_.data() + lane * s_cap_;
  const std::size_t n = n_symbols_[lane];
  // First-seen append order, exactly like OnlineHmm's map interning: a lane
  // holds a handful of symbols, so the linear scan beats the tree walk.
  for (std::size_t i = 0; i < n; ++i) {
    if (seg[i] == id) return i;
  }
  if (n == s_cap_) grow_caps(h_cap_, s_cap_ * 2);
  symbol_ids_[lane * s_cap_ + n] = id;
  n_symbols_[lane] = static_cast<std::uint32_t>(n + 1);
  // The new column and its total are already zero (cleared at free/growth).
  return n;
}

std::size_t OnlineHmmSlab::intern_hidden(std::uint32_t lane, StateId id, StateId first_symbol) {
  const StateId* seg = hidden_ids_.data() + lane * h_cap_;
  const std::size_t n = n_hidden_[lane];
  for (std::size_t i = 0; i < n; ++i) {
    if (seg[i] == id) return i;
  }
  if (n == h_cap_) grow_caps(h_cap_ * 2, s_cap_);
  // Pre-grow the symbol side if the nested intern below would repack: the
  // repack validator must never run while the new row's emission delta is
  // still unwritten (it would see a non-stochastic row).
  if (n_symbols_[lane] == s_cap_) {
    const StateId* sseg = symbol_ids_.data() + lane * s_cap_;
    bool known = false;
    for (std::size_t i = 0; i < n_symbols_[lane] && !known; ++i) {
      known = sseg[i] == first_symbol;
    }
    if (!known) grow_caps(h_cap_, s_cap_ * 2);
  }
  hidden_ids_[lane * h_cap_ + n] = id;
  n_hidden_[lane] = static_cast<std::uint32_t>(n + 1);
  // Fresh identity transition row, then a delta emission row on the state's
  // first observed symbol -- the same order OnlineHmm::intern_hidden uses.
  a_row(lane, n)[n] = 1.0;
  const std::size_t sym = intern_symbol(lane, first_symbol);
  b_row(lane, n)[sym] = 1.0;
  return n;
}

void OnlineHmmSlab::observe(std::uint32_t lane, StateId hidden, StateId symbol) {
  const std::size_t j = intern_hidden(lane, hidden, symbol);
  const std::size_t l = intern_symbol(lane, symbol);

  if (has_last_[lane] != 0 && last_hidden_[lane] != hidden) {
    const std::size_t i = index_of_hidden(lane, last_hidden_[lane]);
    pending_a_.push_back({lane, static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)});
    ++pending_in_lane_[lane];
    a_avg_[lane * a_tile() + i * hs_ + j] += 1.0;
    a_row_counts_[lane * h_cap_ + i] += 1.0;
  }

  std::size_t emit_row = j;
  if (cfg_.update_previous_row && has_last_[lane] != 0) {
    emit_row = index_of_hidden(lane, last_hidden_[lane]);
  }
  pending_b_.push_back(
      {lane, static_cast<std::uint32_t>(emit_row), static_cast<std::uint32_t>(l)});
  ++pending_in_lane_[lane];
  b_avg_[lane * b_tile() + emit_row * ss_ + l] += 1.0;
  b_row_counts_[lane * h_cap_ + emit_row] += 1.0;
  symbol_totals_[lane * s_cap_ + l] += 1.0;

  last_hidden_[lane] = hidden;
  has_last_[lane] = 1;
  ++steps_[lane];
}

void OnlineHmmSlab::flush() {
  const auto& kk = kern::k();
  if (!pending_a_.empty()) {
    flush_offs_.clear();
    flush_cols_.clear();
    for (const PendingRow& p : pending_a_) {
      flush_offs_.push_back(p.lane * a_tile() + p.row * hs_);
      flush_cols_.push_back(p.col);
      pending_in_lane_[p.lane] = 0;
    }
    // Scaling the full padded stride is exact: slack cells hold +0.0.
    kk.ema_scale_bump_rows(a_.data(), flush_offs_.data(), flush_cols_.data(),
                           pending_a_.size(), hs_, 1.0 - cfg_.beta, cfg_.beta);
    pending_a_.clear();
  }
  if (!pending_b_.empty()) {
    flush_offs_.clear();
    flush_cols_.clear();
    for (const PendingRow& p : pending_b_) {
      flush_offs_.push_back(p.lane * b_tile() + p.row * ss_);
      flush_cols_.push_back(p.col);
      pending_in_lane_[p.lane] = 0;
    }
    kk.ema_scale_bump_rows(b_.data(), flush_offs_.data(), flush_cols_.data(),
                           pending_b_.size(), ss_, 1.0 - cfg_.gamma, cfg_.gamma);
    pending_b_.clear();
  }
}

void OnlineHmmSlab::grow_caps(std::size_t h_need, std::size_t s_need) {
  const std::size_t nh = std::max(h_need, h_cap_);
  const std::size_t ns = std::max(s_need, s_cap_);
  if (nh == h_cap_ && ns == s_cap_) return;
  const std::size_t nhs = kern::padded(nh);
  const std::size_t nss = kern::padded(ns);

  std::vector<double> na(lane_cap_ * nh * nhs, 0.0);
  std::vector<double> na_avg(lane_cap_ * nh * nhs, 0.0);
  std::vector<double> nb(lane_cap_ * nh * nss, 0.0);
  std::vector<double> nb_avg(lane_cap_ * nh * nss, 0.0);
  std::vector<StateId> nhid(lane_cap_ * nh, 0);
  std::vector<StateId> nsym(lane_cap_ * ns, 0);
  std::vector<double> narc(lane_cap_ * nh, 0.0);
  std::vector<double> nbrc(lane_cap_ * nh, 0.0);
  std::vector<double> ntot(lane_cap_ * ns, 0.0);

  for (std::size_t lane = 0; lane < lane_cap_; ++lane) {
    if (in_use_[lane] == 0) continue;  // freed lanes are all-zero already
    const std::size_t h = n_hidden_[lane];
    const std::size_t s = n_symbols_[lane];
    for (std::size_t r = 0; r < h; ++r) {
      std::memcpy(na.data() + lane * nh * nhs + r * nhs,
                  a_.data() + lane * a_tile() + r * hs_, h * sizeof(double));
      std::memcpy(na_avg.data() + lane * nh * nhs + r * nhs,
                  a_avg_.data() + lane * a_tile() + r * hs_, h * sizeof(double));
      std::memcpy(nb.data() + lane * nh * nss + r * nss,
                  b_.data() + lane * b_tile() + r * ss_, s * sizeof(double));
      std::memcpy(nb_avg.data() + lane * nh * nss + r * nss,
                  b_avg_.data() + lane * b_tile() + r * ss_, s * sizeof(double));
    }
    std::copy_n(hidden_ids_.begin() + static_cast<std::ptrdiff_t>(lane * h_cap_), h,
                nhid.begin() + static_cast<std::ptrdiff_t>(lane * nh));
    std::copy_n(symbol_ids_.begin() + static_cast<std::ptrdiff_t>(lane * s_cap_), s,
                nsym.begin() + static_cast<std::ptrdiff_t>(lane * ns));
    std::copy_n(a_row_counts_.begin() + static_cast<std::ptrdiff_t>(lane * h_cap_), h,
                narc.begin() + static_cast<std::ptrdiff_t>(lane * nh));
    std::copy_n(b_row_counts_.begin() + static_cast<std::ptrdiff_t>(lane * h_cap_), h,
                nbrc.begin() + static_cast<std::ptrdiff_t>(lane * nh));
    std::copy_n(symbol_totals_.begin() + static_cast<std::ptrdiff_t>(lane * s_cap_), s,
                ntot.begin() + static_cast<std::ptrdiff_t>(lane * ns));
  }

  a_ = std::move(na);
  a_avg_ = std::move(na_avg);
  b_ = std::move(nb);
  b_avg_ = std::move(nb_avg);
  hidden_ids_ = std::move(nhid);
  symbol_ids_ = std::move(nsym);
  a_row_counts_ = std::move(narc);
  b_row_counts_ = std::move(nbrc);
  symbol_totals_ = std::move(ntot);
  h_cap_ = nh;
  s_cap_ = ns;
  hs_ = nhs;
  ss_ = nss;

  ++repacks_;
  util::metrics().counter("hmm.slab.repacks").inc();
  validate_after_repack();
}

void OnlineHmmSlab::validate_after_repack() const {
  if (lane_cap_ == 0) return;
  // Two batched moment sweeps per arena through mat_vec_block: RHS 0 is the
  // all-ones vector (row sums), RHS 1 the column-index ramp (index-weighted
  // mass). A logical row of a_/b_ is a probability distribution, so its sum
  // must be ~1 and its weighted mass at most (logical cols - 1); a row the
  // repack mis-copied -- shifted cells, or mass leaked into capacity slack
  // -- breaks one of the two. Rows past the logical shape must sum to zero.
  const auto& kk = kern::k();
  const std::size_t max_stride = std::max(hs_, ss_);
  std::vector<double> xs(2 * max_stride, 0.0);
  for (std::size_t i = 0; i < max_stride; ++i) {
    xs[i] = 1.0;
    xs[max_stride + i] = static_cast<double>(i);
  }
  const std::size_t rows = lane_cap_ * h_cap_;
  std::vector<double> moments(2 * rows, 0.0);

  const auto check = [&](const std::vector<double>& arena, std::size_t stride,
                         const std::uint32_t* logical_cols, const char* what) {
    kk.mat_vec_block(arena.data(), xs.data(), 2, max_stride, rows, stride, stride,
                     moments.data());
    for (std::size_t lane = 0; lane < lane_cap_; ++lane) {
      const std::size_t h = in_use_[lane] != 0 ? n_hidden_[lane] : 0;
      const std::size_t cols = in_use_[lane] != 0 ? logical_cols[lane] : 0;
      for (std::size_t r = 0; r < h_cap_; ++r) {
        const double sum = moments[lane * h_cap_ + r];
        const double mass = moments[rows + lane * h_cap_ + r];
        if (r < h) {
          const bool sum_ok = sum > 1.0 - kRowSumTol && sum < 1.0 + kRowSumTol;
          const bool mass_ok =
              mass <= static_cast<double>(cols == 0 ? 0 : cols - 1) + kRowSumTol;
          if (!sum_ok || !mass_ok) {
            throw std::runtime_error(std::string("OnlineHmmSlab repack corrupted ") + what);
          }
        } else if (sum != 0.0) {
          throw std::runtime_error(std::string("OnlineHmmSlab repack leaked into ") + what);
        }
      }
    }
  };

  check(a_, hs_, n_hidden_.data(), "transition rows");
  check(b_, ss_, n_symbols_.data(), "emission rows");
}

OnlineHmm OnlineHmmSlab::materialize(std::uint32_t lane, bool eager_avg) const {
  if (lane >= lane_cap_ || in_use_[lane] == 0) {
    throw std::logic_error("OnlineHmmSlab::materialize: lane not in use");
  }
  if (pending_in_lane_[lane] != 0) {
    throw std::logic_error("OnlineHmmSlab::materialize: lane has pending updates");
  }
  OnlineHmm m(cfg_);
  const std::size_t h = n_hidden_[lane];
  const std::size_t s = n_symbols_[lane];
  const StateId* hseg = hidden_ids_.data() + lane * h_cap_;
  const StateId* sseg = symbol_ids_.data() + lane * s_cap_;
  m.hidden_ids_.assign(hseg, hseg + h);
  m.symbol_ids_.assign(sseg, sseg + s);
  for (std::size_t i = 0; i < h; ++i) m.hidden_index_.emplace(hseg[i], i);
  for (std::size_t i = 0; i < s; ++i) m.symbol_index_.emplace(sseg[i], i);
  if (h > 0) {
    m.a_ = Matrix(h, h);
    m.a_avg_ = Matrix(h, h);
    m.b_ = Matrix(h, s);
    m.b_avg_ = Matrix(h, s);
    for (std::size_t r = 0; r < h; ++r) {
      const double* ar = a_.data() + lane * a_tile() + r * hs_;
      const double* aar = a_avg_.data() + lane * a_tile() + r * hs_;
      const double* br = b_.data() + lane * b_tile() + r * ss_;
      const double* bar = b_avg_.data() + lane * b_tile() + r * ss_;
      std::copy_n(ar, h, m.a_.row(r).data());
      std::copy_n(aar, h, m.a_avg_.row(r).data());
      std::copy_n(br, s, m.b_.row(r).data());
      std::copy_n(bar, s, m.b_avg_.row(r).data());
    }
  }
  m.a_row_counts_.assign(a_row_counts_.begin() + static_cast<std::ptrdiff_t>(lane * h_cap_),
                         a_row_counts_.begin() + static_cast<std::ptrdiff_t>(lane * h_cap_ + h));
  m.b_row_counts_.assign(b_row_counts_.begin() + static_cast<std::ptrdiff_t>(lane * h_cap_),
                         b_row_counts_.begin() + static_cast<std::ptrdiff_t>(lane * h_cap_ + h));
  m.symbol_totals_.assign(symbol_totals_.begin() + static_cast<std::ptrdiff_t>(lane * s_cap_),
                          symbol_totals_.begin() + static_cast<std::ptrdiff_t>(lane * s_cap_ + s));
  if (has_last_[lane] != 0) m.last_hidden_ = last_hidden_[lane];
  m.steps_ = steps_[lane];

  if (eager_avg && h > 0) {
    // Pre-fill the averaged-matrix caches with the batched division kernel.
    // Bit-identical to OnlineHmm::refresh_avg_caches_locked: the same
    // per-row IEEE divisions, identity rows for never-left states, and the
    // EMA-initialization copy for never-emitting rows.
    const auto& kk = kern::k();
    Matrix a = m.a_avg_;
    std::vector<std::size_t> offs;
    std::vector<double> divs;
    for (std::size_t r = 0; r < h; ++r) {
      if (m.a_row_counts_[r] > 0.0) {
        offs.push_back(r * a.stride());
        divs.push_back(m.a_row_counts_[r]);
      }
    }
    kk.div_scale_rows(a.data(), offs.data(), divs.data(), offs.size(), a.cols());
    for (std::size_t r = 0; r < h; ++r) {
      if (m.a_row_counts_[r] <= 0.0) a(r, r) = 1.0;
    }
    m.a_avg_cache_ = std::move(a);

    Matrix b = m.b_avg_;
    offs.clear();
    divs.clear();
    for (std::size_t r = 0; r < h; ++r) {
      if (m.b_row_counts_[r] > 0.0) {
        offs.push_back(r * b.stride());
        divs.push_back(m.b_row_counts_[r]);
      }
    }
    kk.div_scale_rows(b.data(), offs.data(), divs.data(), offs.size(), b.cols());
    for (std::size_t r = 0; r < h; ++r) {
      if (m.b_row_counts_[r] <= 0.0) {
        for (std::size_t c = 0; c < s; ++c) b(r, c) = m.b_(r, c);
      }
    }
    m.b_avg_cache_ = std::move(b);
    m.avg_dirty_ = false;
  }
  return m;
}

void OnlineHmmSlab::adopt(std::uint32_t lane, const OnlineHmm& src) {
  if (lane >= lane_cap_ || in_use_[lane] == 0) {
    throw std::logic_error("OnlineHmmSlab::adopt: lane not in use");
  }
  if (n_hidden_[lane] != 0 || steps_[lane] != 0) {
    throw std::logic_error("OnlineHmmSlab::adopt: lane not fresh");
  }
  const std::size_t h = src.num_hidden();
  const std::size_t s = src.num_symbols();
  if (h > h_cap_ || s > s_cap_) {
    grow_caps(std::max(h, h_cap_), std::max(s, s_cap_));
  }
  std::copy_n(src.hidden_ids_.begin(), h,
              hidden_ids_.begin() + static_cast<std::ptrdiff_t>(lane * h_cap_));
  std::copy_n(src.symbol_ids_.begin(), s,
              symbol_ids_.begin() + static_cast<std::ptrdiff_t>(lane * s_cap_));
  for (std::size_t r = 0; r < h; ++r) {
    std::copy_n(src.a_.row(r).data(), h, a_row(lane, r));
    std::copy_n(src.a_avg_.row(r).data(), h, a_avg_.data() + lane * a_tile() + r * hs_);
    std::copy_n(src.b_.row(r).data(), s, b_row(lane, r));
    std::copy_n(src.b_avg_.row(r).data(), s, b_avg_.data() + lane * b_tile() + r * ss_);
  }
  std::copy_n(src.a_row_counts_.begin(), h,
              a_row_counts_.begin() + static_cast<std::ptrdiff_t>(lane * h_cap_));
  std::copy_n(src.b_row_counts_.begin(), h,
              b_row_counts_.begin() + static_cast<std::ptrdiff_t>(lane * h_cap_));
  std::copy_n(src.symbol_totals_.begin(), s,
              symbol_totals_.begin() + static_cast<std::ptrdiff_t>(lane * s_cap_));
  n_hidden_[lane] = static_cast<std::uint32_t>(h);
  n_symbols_[lane] = static_cast<std::uint32_t>(s);
  if (src.last_hidden_.has_value()) {
    last_hidden_[lane] = *src.last_hidden_;
    has_last_[lane] = 1;
  }
  steps_[lane] = src.steps_;
}

}  // namespace sentinel::hmm
