// Struct-of-arrays slab storage for per-sensor online HMMs.
//
// Every escalated sensor the diagnosis tier tracks carries two OnlineHmm
// estimators (the active track's M_CE and the sensor's pooled aggregate).
// As independent heap objects those defeat the SIMD kernel layer one tiny
// row update at a time: each observe() walks two std::maps, touches four
// scattered Matrix allocations, and track churn reallocates A/B from
// scratch. The slab packs the same estimator state for ALL lanes into
// contiguous arenas keyed by dense lane ids:
//
//   a_      lane-major fixed-gain A tiles      (h_cap x h_stride doubles)
//   b_      lane-major fixed-gain B tiles      (h_cap x s_stride doubles)
//   a_avg_  decreasing-gain transition counts  (same shape as a_)
//   b_avg_  decreasing-gain emission counts    (same shape as b_)
//
// plus per-lane header vectors (hidden/symbol id segments, row counts,
// symbol totals, last-hidden, steps). All lanes share one capacity pair
// (h_cap_, s_cap_): when any lane outgrows it the whole slab repacks into
// wider tiles (counted in the `hmm.slab.repacks` metric and re-validated
// with a batched mat_vec_block moment check).
//
// Updates run in two phases so the hot loop is branch-light and the row
// EMAs batch into one kernel call per matrix:
//
//   observe(lane, hidden, symbol)  -- intern ids (linear scan over the
//       lane's id segment: lanes hold a handful of states, and first-seen
//       append order matches OnlineHmm's map-based interning exactly),
//       push the (lane, row, col) EMA updates onto the pending batch, and
//       apply the order-independent scalar count bumps immediately.
//   flush()  -- one ema_scale_bump_rows call over the batched A rows and
//       one over the batched B rows. Byte offsets are computed at flush
//       time, so a repack between observe and flush is safe.
//
// Bit-identity with per-object OnlineHmm: each pending row is scaled then
// bumped in batch order (exactly the per-observe sequence); within one
// window every lane is observed at most once, so batch rows are distinct;
// the count-matrix updates are +1.0 adds on doubles (exact, commutative);
// and scaling a padded row's +0.0 slack leaves it +0.0. materialize()
// therefore reproduces the OnlineHmm an unbatched run would have built,
// checkpoint bytes included.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hmm/online_hmm.h"

namespace sentinel::hmm {

class OnlineHmmSlab {
 public:
  static constexpr std::uint32_t kNoLane = 0xffffffffu;

  explicit OnlineHmmSlab(OnlineHmmConfig cfg);

  /// Claim a zeroed lane (recycled from the freelist when one is free).
  std::uint32_t open_lane();
  /// Return a lane to the freelist; its state is cleared for reuse.
  /// The lane must have no pending batched updates.
  void free_lane(std::uint32_t lane);

  /// Phase 1 of one estimation step (see OnlineHmm::observe): interning and
  /// scalar count bumps now, the two EMA row updates onto the pending batch.
  void observe(std::uint32_t lane, StateId hidden, StateId symbol);

  /// Phase 2: apply all pending EMA row updates in arrival order, one
  /// batched kernel call per matrix. Idempotent when nothing is pending.
  void flush();

  bool lane_has_pending(std::uint32_t lane) const { return pending_in_lane_[lane] != 0; }
  bool has_pending() const { return !pending_a_.empty() || !pending_b_.empty(); }

  std::size_t steps(std::uint32_t lane) const { return steps_[lane]; }
  std::size_t lanes_in_use() const { return lanes_in_use_; }
  std::size_t lane_capacity() const { return lane_cap_; }
  /// Whole-slab repacks triggered by capacity growth (also metric-counted
  /// as `hmm.slab.repacks`).
  std::size_t repacks() const { return repacks_; }

  /// Build the standalone estimator this lane's state denotes -- the same
  /// object (checkpoint bytes included) an unbatched OnlineHmm fed the same
  /// observations would be. With `eager_avg` the averaged-matrix caches are
  /// pre-filled through the batched division kernel (use when the caller
  /// will read them immediately, e.g. a diagnosis view); without it they
  /// refresh lazily on first read -- same arithmetic, same results, no
  /// up-front cost for consumers (track close, checkpointing) that may
  /// never look. The lane's pending updates must be flushed first.
  OnlineHmm materialize(std::uint32_t lane, bool eager_avg = false) const;

  /// Load `src`'s state into an (empty) lane -- checkpoint restore.
  void adopt(std::uint32_t lane, const OnlineHmm& src);

 private:
  struct PendingRow {
    std::uint32_t lane;
    std::uint32_t row;
    std::uint32_t col;
  };

  std::size_t a_tile() const { return h_cap_ * hs_; }
  std::size_t b_tile() const { return h_cap_ * ss_; }
  double* a_row(std::uint32_t lane, std::size_t r) { return a_.data() + lane * a_tile() + r * hs_; }
  double* b_row(std::uint32_t lane, std::size_t r) { return b_.data() + lane * b_tile() + r * ss_; }

  std::size_t intern_hidden(std::uint32_t lane, StateId id, StateId first_symbol);
  std::size_t intern_symbol(std::uint32_t lane, StateId id);
  /// Index of an already-interned hidden id (the last-hidden lookup).
  std::size_t index_of_hidden(std::uint32_t lane, StateId id) const;

  void grow_lanes(std::size_t need);
  /// Repack every tile into wider (h_need, s_need) capacities.
  void grow_caps(std::size_t h_need, std::size_t s_need);
  void clear_lane(std::uint32_t lane);
  /// Post-repack invariant check over all in-use lanes, batched through
  /// mat_vec_block: each logical A/B row must sum to ~1 with its
  /// index-weighted mass inside the logical column range (so a repack that
  /// mis-copied offsets or leaked values into slack cells fails loudly).
  void validate_after_repack() const;

  OnlineHmmConfig cfg_;

  std::size_t lane_cap_ = 0;
  std::size_t h_cap_ = 0;  // hidden-state capacity shared by all lanes
  std::size_t s_cap_ = 0;  // symbol capacity shared by all lanes
  std::size_t hs_ = 0;     // padded row stride of a_/a_avg_ tiles
  std::size_t ss_ = 0;     // padded row stride of b_/b_avg_ tiles

  std::vector<double> a_, b_, a_avg_, b_avg_;

  // Per-lane headers; id/count segments are lane-major slices of size
  // h_cap_/s_cap_ so a repack moves them with the tiles.
  std::vector<StateId> hidden_ids_;      // lane_cap_ * h_cap_
  std::vector<StateId> symbol_ids_;      // lane_cap_ * s_cap_
  std::vector<double> a_row_counts_;     // lane_cap_ * h_cap_
  std::vector<double> b_row_counts_;     // lane_cap_ * h_cap_
  std::vector<double> symbol_totals_;    // lane_cap_ * s_cap_
  std::vector<std::uint32_t> n_hidden_;
  std::vector<std::uint32_t> n_symbols_;
  std::vector<StateId> last_hidden_;
  std::vector<std::uint8_t> has_last_;
  std::vector<std::uint8_t> in_use_;
  std::vector<std::uint64_t> steps_;
  std::vector<std::uint32_t> pending_in_lane_;

  std::vector<std::uint32_t> free_lanes_;
  std::size_t lanes_in_use_ = 0;

  std::vector<PendingRow> pending_a_;
  std::vector<PendingRow> pending_b_;
  // Flush scratch (offsets/columns), retained across windows.
  std::vector<std::size_t> flush_offs_;
  std::vector<std::uint32_t> flush_cols_;

  std::size_t repacks_ = 0;
};

}  // namespace sentinel::hmm
