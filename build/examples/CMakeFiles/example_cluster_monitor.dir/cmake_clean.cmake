file(REMOVE_RECURSE
  "CMakeFiles/example_cluster_monitor.dir/cluster_monitor.cpp.o"
  "CMakeFiles/example_cluster_monitor.dir/cluster_monitor.cpp.o.d"
  "example_cluster_monitor"
  "example_cluster_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cluster_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
