# Empty dependencies file for example_cluster_monitor.
# This may be replaced when dependencies are built.
