file(REMOVE_RECURSE
  "CMakeFiles/example_live_monitor.dir/live_monitor.cpp.o"
  "CMakeFiles/example_live_monitor.dir/live_monitor.cpp.o.d"
  "example_live_monitor"
  "example_live_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_live_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
