# Empty compiler generated dependencies file for example_live_monitor.
# This may be replaced when dependencies are built.
