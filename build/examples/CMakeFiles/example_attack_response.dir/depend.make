# Empty dependencies file for example_attack_response.
# This may be replaced when dependencies are built.
