file(REMOVE_RECURSE
  "CMakeFiles/example_attack_response.dir/attack_response.cpp.o"
  "CMakeFiles/example_attack_response.dir/attack_response.cpp.o.d"
  "example_attack_response"
  "example_attack_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_attack_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
