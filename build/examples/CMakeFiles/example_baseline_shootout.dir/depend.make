# Empty dependencies file for example_baseline_shootout.
# This may be replaced when dependencies are built.
