file(REMOVE_RECURSE
  "CMakeFiles/example_baseline_shootout.dir/baseline_shootout.cpp.o"
  "CMakeFiles/example_baseline_shootout.dir/baseline_shootout.cpp.o.d"
  "example_baseline_shootout"
  "example_baseline_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_baseline_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
