# Empty dependencies file for example_gdi_month.
# This may be replaced when dependencies are built.
