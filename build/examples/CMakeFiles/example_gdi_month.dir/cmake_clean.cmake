file(REMOVE_RECURSE
  "CMakeFiles/example_gdi_month.dir/gdi_month.cpp.o"
  "CMakeFiles/example_gdi_month.dir/gdi_month.cpp.o.d"
  "example_gdi_month"
  "example_gdi_month.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gdi_month.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
