file(REMOVE_RECURSE
  "CMakeFiles/example_fleet_resilience.dir/fleet_resilience.cpp.o"
  "CMakeFiles/example_fleet_resilience.dir/fleet_resilience.cpp.o.d"
  "example_fleet_resilience"
  "example_fleet_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fleet_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
