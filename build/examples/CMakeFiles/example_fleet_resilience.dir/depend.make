# Empty dependencies file for example_fleet_resilience.
# This may be replaced when dependencies are built.
