# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "stuck-at" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gdi_month "/root/repo/build/examples/example_gdi_month")
set_tests_properties(example_gdi_month PROPERTIES  PASS_REGULAR_EXPRESSION "error/stuck-at" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attack_response "/root/repo/build/examples/example_attack_response")
set_tests_properties(example_attack_response PROPERTIES  PASS_REGULAR_EXPRESSION "dynamic-deletion" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_baseline_shootout "/root/repo/build/examples/example_baseline_shootout")
set_tests_properties(example_baseline_shootout PROPERTIES  PASS_REGULAR_EXPRESSION "error/calibration" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_monitor "/root/repo/build/examples/example_live_monitor")
set_tests_properties(example_live_monitor PROPERTIES  PASS_REGULAR_EXPRESSION "error/additive" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_monitor "/root/repo/build/examples/example_cluster_monitor")
set_tests_properties(example_cluster_monitor PROPERTIES  PASS_REGULAR_EXPRESSION "attack/dynamic-deletion" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fleet_resilience "/root/repo/build/examples/example_fleet_resilience")
set_tests_properties(example_fleet_resilience PROPERTIES  PASS_REGULAR_EXPRESSION "structural outliers: south" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
