# Empty dependencies file for fig06_environment.
# This may be replaced when dependencies are built.
