file(REMOVE_RECURSE
  "CMakeFiles/fig06_environment.dir/fig06_environment.cpp.o"
  "CMakeFiles/fig06_environment.dir/fig06_environment.cpp.o.d"
  "fig06_environment"
  "fig06_environment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
