file(REMOVE_RECURSE
  "libsentinel_bench_common.a"
)
