# Empty dependencies file for sentinel_bench_common.
# This may be replaced when dependencies are built.
