file(REMOVE_RECURSE
  "CMakeFiles/sentinel_bench_common.dir/common/scenario.cpp.o"
  "CMakeFiles/sentinel_bench_common.dir/common/scenario.cpp.o.d"
  "libsentinel_bench_common.a"
  "libsentinel_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
