# Empty dependencies file for fig09_tables02_03_stuckat.
# This may be replaced when dependencies are built.
