file(REMOVE_RECURSE
  "CMakeFiles/fig09_tables02_03_stuckat.dir/fig09_tables02_03_stuckat.cpp.o"
  "CMakeFiles/fig09_tables02_03_stuckat.dir/fig09_tables02_03_stuckat.cpp.o.d"
  "fig09_tables02_03_stuckat"
  "fig09_tables02_03_stuckat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_tables02_03_stuckat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
