
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_majority.cpp" "bench/CMakeFiles/ablation_majority.dir/ablation_majority.cpp.o" "gcc" "bench/CMakeFiles/ablation_majority.dir/ablation_majority.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/sentinel_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_changepoint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_hmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
