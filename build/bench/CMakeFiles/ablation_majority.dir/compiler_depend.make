# Empty compiler generated dependencies file for ablation_majority.
# This may be replaced when dependencies are built.
