file(REMOVE_RECURSE
  "CMakeFiles/ablation_majority.dir/ablation_majority.cpp.o"
  "CMakeFiles/ablation_majority.dir/ablation_majority.cpp.o.d"
  "ablation_majority"
  "ablation_majority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_majority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
