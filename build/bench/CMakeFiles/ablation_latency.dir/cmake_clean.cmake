file(REMOVE_RECURSE
  "CMakeFiles/ablation_latency.dir/ablation_latency.cpp.o"
  "CMakeFiles/ablation_latency.dir/ablation_latency.cpp.o.d"
  "ablation_latency"
  "ablation_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
