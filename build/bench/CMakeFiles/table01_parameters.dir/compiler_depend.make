# Empty compiler generated dependencies file for table01_parameters.
# This may be replaced when dependencies are built.
