# Empty dependencies file for ablation_stealth.
# This may be replaced when dependencies are built.
