file(REMOVE_RECURSE
  "CMakeFiles/ablation_stealth.dir/ablation_stealth.cpp.o"
  "CMakeFiles/ablation_stealth.dir/ablation_stealth.cpp.o.d"
  "ablation_stealth"
  "ablation_stealth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stealth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
