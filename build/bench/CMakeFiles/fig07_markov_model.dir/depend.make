# Empty dependencies file for fig07_markov_model.
# This may be replaced when dependencies are built.
