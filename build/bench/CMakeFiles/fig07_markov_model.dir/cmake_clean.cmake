file(REMOVE_RECURSE
  "CMakeFiles/fig07_markov_model.dir/fig07_markov_model.cpp.o"
  "CMakeFiles/fig07_markov_model.dir/fig07_markov_model.cpp.o.d"
  "fig07_markov_model"
  "fig07_markov_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_markov_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
