file(REMOVE_RECURSE
  "CMakeFiles/baseline_comparison.dir/baseline_comparison.cpp.o"
  "CMakeFiles/baseline_comparison.dir/baseline_comparison.cpp.o.d"
  "baseline_comparison"
  "baseline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
