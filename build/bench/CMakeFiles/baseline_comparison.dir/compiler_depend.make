# Empty compiler generated dependencies file for baseline_comparison.
# This may be replaced when dependencies are built.
