# Empty compiler generated dependencies file for accuracy_matrix.
# This may be replaced when dependencies are built.
