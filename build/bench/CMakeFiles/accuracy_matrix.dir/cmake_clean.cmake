file(REMOVE_RECURSE
  "CMakeFiles/accuracy_matrix.dir/accuracy_matrix.cpp.o"
  "CMakeFiles/accuracy_matrix.dir/accuracy_matrix.cpp.o.d"
  "accuracy_matrix"
  "accuracy_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
