file(REMOVE_RECURSE
  "CMakeFiles/fig10_table06_deletion.dir/fig10_table06_deletion.cpp.o"
  "CMakeFiles/fig10_table06_deletion.dir/fig10_table06_deletion.cpp.o.d"
  "fig10_table06_deletion"
  "fig10_table06_deletion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_table06_deletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
