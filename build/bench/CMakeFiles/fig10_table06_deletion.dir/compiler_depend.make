# Empty compiler generated dependencies file for fig10_table06_deletion.
# This may be replaced when dependencies are built.
