# Empty dependencies file for ablation_learning.
# This may be replaced when dependencies are built.
