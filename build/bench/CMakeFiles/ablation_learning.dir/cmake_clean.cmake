file(REMOVE_RECURSE
  "CMakeFiles/ablation_learning.dir/ablation_learning.cpp.o"
  "CMakeFiles/ablation_learning.dir/ablation_learning.cpp.o.d"
  "ablation_learning"
  "ablation_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
