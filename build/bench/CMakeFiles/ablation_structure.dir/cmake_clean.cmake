file(REMOVE_RECURSE
  "CMakeFiles/ablation_structure.dir/ablation_structure.cpp.o"
  "CMakeFiles/ablation_structure.dir/ablation_structure.cpp.o.d"
  "ablation_structure"
  "ablation_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
