# Empty dependencies file for ablation_structure.
# This may be replaced when dependencies are built.
