# Empty dependencies file for ablation_window.
# This may be replaced when dependencies are built.
