# Empty compiler generated dependencies file for perf_hmm.
# This may be replaced when dependencies are built.
