file(REMOVE_RECURSE
  "CMakeFiles/perf_hmm.dir/perf_hmm.cpp.o"
  "CMakeFiles/perf_hmm.dir/perf_hmm.cpp.o.d"
  "perf_hmm"
  "perf_hmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
