file(REMOVE_RECURSE
  "CMakeFiles/fig08_faulty_sensors.dir/fig08_faulty_sensors.cpp.o"
  "CMakeFiles/fig08_faulty_sensors.dir/fig08_faulty_sensors.cpp.o.d"
  "fig08_faulty_sensors"
  "fig08_faulty_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_faulty_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
