# Empty dependencies file for fig08_faulty_sensors.
# This may be replaced when dependencies are built.
