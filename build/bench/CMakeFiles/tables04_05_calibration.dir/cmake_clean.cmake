file(REMOVE_RECURSE
  "CMakeFiles/tables04_05_calibration.dir/tables04_05_calibration.cpp.o"
  "CMakeFiles/tables04_05_calibration.dir/tables04_05_calibration.cpp.o.d"
  "tables04_05_calibration"
  "tables04_05_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables04_05_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
