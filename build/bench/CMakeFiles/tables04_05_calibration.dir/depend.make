# Empty dependencies file for tables04_05_calibration.
# This may be replaced when dependencies are built.
