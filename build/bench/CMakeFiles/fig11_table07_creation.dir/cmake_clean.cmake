file(REMOVE_RECURSE
  "CMakeFiles/fig11_table07_creation.dir/fig11_table07_creation.cpp.o"
  "CMakeFiles/fig11_table07_creation.dir/fig11_table07_creation.cpp.o.d"
  "fig11_table07_creation"
  "fig11_table07_creation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_table07_creation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
