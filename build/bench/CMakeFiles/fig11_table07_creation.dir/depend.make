# Empty dependencies file for fig11_table07_creation.
# This may be replaced when dependencies are built.
