# Empty dependencies file for fig12_alarms.
# This may be replaced when dependencies are built.
