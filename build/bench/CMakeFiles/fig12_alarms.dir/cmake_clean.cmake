file(REMOVE_RECURSE
  "CMakeFiles/fig12_alarms.dir/fig12_alarms.cpp.o"
  "CMakeFiles/fig12_alarms.dir/fig12_alarms.cpp.o.d"
  "fig12_alarms"
  "fig12_alarms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_alarms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
