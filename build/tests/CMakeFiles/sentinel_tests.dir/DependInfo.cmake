
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alarms_tracks_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/alarms_tracks_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/alarms_tracks_test.cpp.o.d"
  "/root/repo/tests/attack_models_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/attack_models_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/attack_models_test.cpp.o.d"
  "/root/repo/tests/autotune_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/autotune_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/autotune_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/changepoint_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/changepoint_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/changepoint_test.cpp.o.d"
  "/root/repo/tests/checkpoint_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/checkpoint_test.cpp.o.d"
  "/root/repo/tests/classifier_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/classifier_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/classifier_test.cpp.o.d"
  "/root/repo/tests/coalition_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/coalition_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/coalition_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/environment_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/environment_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/environment_test.cpp.o.d"
  "/root/repo/tests/fault_models_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/fault_models_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/fault_models_test.cpp.o.d"
  "/root/repo/tests/fleet_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/fleet_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/fleet_test.cpp.o.d"
  "/root/repo/tests/health_markov_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/health_markov_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/health_markov_test.cpp.o.d"
  "/root/repo/tests/hmm_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/hmm_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/hmm_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/markov_chain_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/markov_chain_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/markov_chain_test.cpp.o.d"
  "/root/repo/tests/model_states_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/model_states_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/model_states_test.cpp.o.d"
  "/root/repo/tests/online_hmm_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/online_hmm_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/online_hmm_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/replay_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/replay_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/replay_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/scenario_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/scenario_test.cpp.o.d"
  "/root/repo/tests/sensor_network_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/sensor_network_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/sensor_network_test.cpp.o.d"
  "/root/repo/tests/smoothing_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/smoothing_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/smoothing_test.cpp.o.d"
  "/root/repo/tests/state_ident_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/state_ident_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/state_ident_test.cpp.o.d"
  "/root/repo/tests/trace_filter_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/trace_filter_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/trace_filter_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/sentinel_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/sentinel_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/sentinel_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_changepoint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_hmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
