# Empty compiler generated dependencies file for sentinel_tests.
# This may be replaced when dependencies are built.
