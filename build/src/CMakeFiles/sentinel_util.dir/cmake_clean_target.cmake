file(REMOVE_RECURSE
  "libsentinel_util.a"
)
