file(REMOVE_RECURSE
  "CMakeFiles/sentinel_util.dir/util/csv.cpp.o"
  "CMakeFiles/sentinel_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/sentinel_util.dir/util/matrix.cpp.o"
  "CMakeFiles/sentinel_util.dir/util/matrix.cpp.o.d"
  "CMakeFiles/sentinel_util.dir/util/stats.cpp.o"
  "CMakeFiles/sentinel_util.dir/util/stats.cpp.o.d"
  "libsentinel_util.a"
  "libsentinel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
