# Empty compiler generated dependencies file for sentinel_util.
# This may be replaced when dependencies are built.
