
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/changepoint/cusum.cpp" "src/CMakeFiles/sentinel_changepoint.dir/changepoint/cusum.cpp.o" "gcc" "src/CMakeFiles/sentinel_changepoint.dir/changepoint/cusum.cpp.o.d"
  "/root/repo/src/changepoint/kofn.cpp" "src/CMakeFiles/sentinel_changepoint.dir/changepoint/kofn.cpp.o" "gcc" "src/CMakeFiles/sentinel_changepoint.dir/changepoint/kofn.cpp.o.d"
  "/root/repo/src/changepoint/sprt.cpp" "src/CMakeFiles/sentinel_changepoint.dir/changepoint/sprt.cpp.o" "gcc" "src/CMakeFiles/sentinel_changepoint.dir/changepoint/sprt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sentinel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
