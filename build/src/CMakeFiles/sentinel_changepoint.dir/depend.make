# Empty dependencies file for sentinel_changepoint.
# This may be replaced when dependencies are built.
