file(REMOVE_RECURSE
  "libsentinel_changepoint.a"
)
