file(REMOVE_RECURSE
  "CMakeFiles/sentinel_changepoint.dir/changepoint/cusum.cpp.o"
  "CMakeFiles/sentinel_changepoint.dir/changepoint/cusum.cpp.o.d"
  "CMakeFiles/sentinel_changepoint.dir/changepoint/kofn.cpp.o"
  "CMakeFiles/sentinel_changepoint.dir/changepoint/kofn.cpp.o.d"
  "CMakeFiles/sentinel_changepoint.dir/changepoint/sprt.cpp.o"
  "CMakeFiles/sentinel_changepoint.dir/changepoint/sprt.cpp.o.d"
  "libsentinel_changepoint.a"
  "libsentinel_changepoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_changepoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
