file(REMOVE_RECURSE
  "CMakeFiles/sentinel_trace.dir/trace/filter.cpp.o"
  "CMakeFiles/sentinel_trace.dir/trace/filter.cpp.o.d"
  "CMakeFiles/sentinel_trace.dir/trace/health.cpp.o"
  "CMakeFiles/sentinel_trace.dir/trace/health.cpp.o.d"
  "CMakeFiles/sentinel_trace.dir/trace/trace_io.cpp.o"
  "CMakeFiles/sentinel_trace.dir/trace/trace_io.cpp.o.d"
  "CMakeFiles/sentinel_trace.dir/trace/windower.cpp.o"
  "CMakeFiles/sentinel_trace.dir/trace/windower.cpp.o.d"
  "libsentinel_trace.a"
  "libsentinel_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
