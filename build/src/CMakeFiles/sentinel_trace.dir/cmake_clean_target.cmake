file(REMOVE_RECURSE
  "libsentinel_trace.a"
)
