
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/filter.cpp" "src/CMakeFiles/sentinel_trace.dir/trace/filter.cpp.o" "gcc" "src/CMakeFiles/sentinel_trace.dir/trace/filter.cpp.o.d"
  "/root/repo/src/trace/health.cpp" "src/CMakeFiles/sentinel_trace.dir/trace/health.cpp.o" "gcc" "src/CMakeFiles/sentinel_trace.dir/trace/health.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/sentinel_trace.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/sentinel_trace.dir/trace/trace_io.cpp.o.d"
  "/root/repo/src/trace/windower.cpp" "src/CMakeFiles/sentinel_trace.dir/trace/windower.cpp.o" "gcc" "src/CMakeFiles/sentinel_trace.dir/trace/windower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sentinel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
