# Empty compiler generated dependencies file for sentinel_trace.
# This may be replaced when dependencies are built.
