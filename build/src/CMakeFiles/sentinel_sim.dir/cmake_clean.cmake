file(REMOVE_RECURSE
  "CMakeFiles/sentinel_sim.dir/sim/environment.cpp.o"
  "CMakeFiles/sentinel_sim.dir/sim/environment.cpp.o.d"
  "CMakeFiles/sentinel_sim.dir/sim/link.cpp.o"
  "CMakeFiles/sentinel_sim.dir/sim/link.cpp.o.d"
  "CMakeFiles/sentinel_sim.dir/sim/network.cpp.o"
  "CMakeFiles/sentinel_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/sentinel_sim.dir/sim/sensor.cpp.o"
  "CMakeFiles/sentinel_sim.dir/sim/sensor.cpp.o.d"
  "CMakeFiles/sentinel_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/sentinel_sim.dir/sim/simulator.cpp.o.d"
  "libsentinel_sim.a"
  "libsentinel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
