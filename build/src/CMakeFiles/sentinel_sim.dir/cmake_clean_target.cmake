file(REMOVE_RECURSE
  "libsentinel_sim.a"
)
