# Empty dependencies file for sentinel_sim.
# This may be replaced when dependencies are built.
