# Empty compiler generated dependencies file for sentinel_hmm.
# This may be replaced when dependencies are built.
