file(REMOVE_RECURSE
  "CMakeFiles/sentinel_hmm.dir/hmm/hmm.cpp.o"
  "CMakeFiles/sentinel_hmm.dir/hmm/hmm.cpp.o.d"
  "CMakeFiles/sentinel_hmm.dir/hmm/markov_chain.cpp.o"
  "CMakeFiles/sentinel_hmm.dir/hmm/markov_chain.cpp.o.d"
  "CMakeFiles/sentinel_hmm.dir/hmm/online_hmm.cpp.o"
  "CMakeFiles/sentinel_hmm.dir/hmm/online_hmm.cpp.o.d"
  "libsentinel_hmm.a"
  "libsentinel_hmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
