file(REMOVE_RECURSE
  "libsentinel_hmm.a"
)
