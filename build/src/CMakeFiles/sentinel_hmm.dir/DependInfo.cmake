
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hmm/hmm.cpp" "src/CMakeFiles/sentinel_hmm.dir/hmm/hmm.cpp.o" "gcc" "src/CMakeFiles/sentinel_hmm.dir/hmm/hmm.cpp.o.d"
  "/root/repo/src/hmm/markov_chain.cpp" "src/CMakeFiles/sentinel_hmm.dir/hmm/markov_chain.cpp.o" "gcc" "src/CMakeFiles/sentinel_hmm.dir/hmm/markov_chain.cpp.o.d"
  "/root/repo/src/hmm/online_hmm.cpp" "src/CMakeFiles/sentinel_hmm.dir/hmm/online_hmm.cpp.o" "gcc" "src/CMakeFiles/sentinel_hmm.dir/hmm/online_hmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sentinel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
