file(REMOVE_RECURSE
  "CMakeFiles/sentinel_baseline.dir/baseline/markov_detector.cpp.o"
  "CMakeFiles/sentinel_baseline.dir/baseline/markov_detector.cpp.o.d"
  "CMakeFiles/sentinel_baseline.dir/baseline/median_detector.cpp.o"
  "CMakeFiles/sentinel_baseline.dir/baseline/median_detector.cpp.o.d"
  "CMakeFiles/sentinel_baseline.dir/baseline/warrender.cpp.o"
  "CMakeFiles/sentinel_baseline.dir/baseline/warrender.cpp.o.d"
  "libsentinel_baseline.a"
  "libsentinel_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
