# Empty compiler generated dependencies file for sentinel_baseline.
# This may be replaced when dependencies are built.
