file(REMOVE_RECURSE
  "libsentinel_baseline.a"
)
