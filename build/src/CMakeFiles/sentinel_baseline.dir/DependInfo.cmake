
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/markov_detector.cpp" "src/CMakeFiles/sentinel_baseline.dir/baseline/markov_detector.cpp.o" "gcc" "src/CMakeFiles/sentinel_baseline.dir/baseline/markov_detector.cpp.o.d"
  "/root/repo/src/baseline/median_detector.cpp" "src/CMakeFiles/sentinel_baseline.dir/baseline/median_detector.cpp.o" "gcc" "src/CMakeFiles/sentinel_baseline.dir/baseline/median_detector.cpp.o.d"
  "/root/repo/src/baseline/warrender.cpp" "src/CMakeFiles/sentinel_baseline.dir/baseline/warrender.cpp.o" "gcc" "src/CMakeFiles/sentinel_baseline.dir/baseline/warrender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sentinel_hmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
