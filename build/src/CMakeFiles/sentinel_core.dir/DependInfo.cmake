
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alarms.cpp" "src/CMakeFiles/sentinel_core.dir/core/alarms.cpp.o" "gcc" "src/CMakeFiles/sentinel_core.dir/core/alarms.cpp.o.d"
  "/root/repo/src/core/autotune.cpp" "src/CMakeFiles/sentinel_core.dir/core/autotune.cpp.o" "gcc" "src/CMakeFiles/sentinel_core.dir/core/autotune.cpp.o.d"
  "/root/repo/src/core/classifier.cpp" "src/CMakeFiles/sentinel_core.dir/core/classifier.cpp.o" "gcc" "src/CMakeFiles/sentinel_core.dir/core/classifier.cpp.o.d"
  "/root/repo/src/core/fleet.cpp" "src/CMakeFiles/sentinel_core.dir/core/fleet.cpp.o" "gcc" "src/CMakeFiles/sentinel_core.dir/core/fleet.cpp.o.d"
  "/root/repo/src/core/model_states.cpp" "src/CMakeFiles/sentinel_core.dir/core/model_states.cpp.o" "gcc" "src/CMakeFiles/sentinel_core.dir/core/model_states.cpp.o.d"
  "/root/repo/src/core/offline_kmeans.cpp" "src/CMakeFiles/sentinel_core.dir/core/offline_kmeans.cpp.o" "gcc" "src/CMakeFiles/sentinel_core.dir/core/offline_kmeans.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/sentinel_core.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/sentinel_core.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/sentinel_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/sentinel_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/smoothing.cpp" "src/CMakeFiles/sentinel_core.dir/core/smoothing.cpp.o" "gcc" "src/CMakeFiles/sentinel_core.dir/core/smoothing.cpp.o.d"
  "/root/repo/src/core/state_ident.cpp" "src/CMakeFiles/sentinel_core.dir/core/state_ident.cpp.o" "gcc" "src/CMakeFiles/sentinel_core.dir/core/state_ident.cpp.o.d"
  "/root/repo/src/core/tracks.cpp" "src/CMakeFiles/sentinel_core.dir/core/tracks.cpp.o" "gcc" "src/CMakeFiles/sentinel_core.dir/core/tracks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sentinel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_hmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_changepoint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
