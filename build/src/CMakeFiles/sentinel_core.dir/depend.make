# Empty dependencies file for sentinel_core.
# This may be replaced when dependencies are built.
