file(REMOVE_RECURSE
  "CMakeFiles/sentinel_core.dir/core/alarms.cpp.o"
  "CMakeFiles/sentinel_core.dir/core/alarms.cpp.o.d"
  "CMakeFiles/sentinel_core.dir/core/autotune.cpp.o"
  "CMakeFiles/sentinel_core.dir/core/autotune.cpp.o.d"
  "CMakeFiles/sentinel_core.dir/core/classifier.cpp.o"
  "CMakeFiles/sentinel_core.dir/core/classifier.cpp.o.d"
  "CMakeFiles/sentinel_core.dir/core/fleet.cpp.o"
  "CMakeFiles/sentinel_core.dir/core/fleet.cpp.o.d"
  "CMakeFiles/sentinel_core.dir/core/model_states.cpp.o"
  "CMakeFiles/sentinel_core.dir/core/model_states.cpp.o.d"
  "CMakeFiles/sentinel_core.dir/core/offline_kmeans.cpp.o"
  "CMakeFiles/sentinel_core.dir/core/offline_kmeans.cpp.o.d"
  "CMakeFiles/sentinel_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/sentinel_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/sentinel_core.dir/core/report.cpp.o"
  "CMakeFiles/sentinel_core.dir/core/report.cpp.o.d"
  "CMakeFiles/sentinel_core.dir/core/smoothing.cpp.o"
  "CMakeFiles/sentinel_core.dir/core/smoothing.cpp.o.d"
  "CMakeFiles/sentinel_core.dir/core/state_ident.cpp.o"
  "CMakeFiles/sentinel_core.dir/core/state_ident.cpp.o.d"
  "CMakeFiles/sentinel_core.dir/core/tracks.cpp.o"
  "CMakeFiles/sentinel_core.dir/core/tracks.cpp.o.d"
  "libsentinel_core.a"
  "libsentinel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
