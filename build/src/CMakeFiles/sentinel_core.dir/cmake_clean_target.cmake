file(REMOVE_RECURSE
  "libsentinel_core.a"
)
