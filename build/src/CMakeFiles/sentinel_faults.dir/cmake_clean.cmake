file(REMOVE_RECURSE
  "CMakeFiles/sentinel_faults.dir/faults/attack_models.cpp.o"
  "CMakeFiles/sentinel_faults.dir/faults/attack_models.cpp.o.d"
  "CMakeFiles/sentinel_faults.dir/faults/fault_models.cpp.o"
  "CMakeFiles/sentinel_faults.dir/faults/fault_models.cpp.o.d"
  "CMakeFiles/sentinel_faults.dir/faults/injection_plan.cpp.o"
  "CMakeFiles/sentinel_faults.dir/faults/injection_plan.cpp.o.d"
  "CMakeFiles/sentinel_faults.dir/faults/replay.cpp.o"
  "CMakeFiles/sentinel_faults.dir/faults/replay.cpp.o.d"
  "libsentinel_faults.a"
  "libsentinel_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
