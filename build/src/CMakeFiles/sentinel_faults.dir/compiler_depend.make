# Empty compiler generated dependencies file for sentinel_faults.
# This may be replaced when dependencies are built.
