file(REMOVE_RECURSE
  "libsentinel_faults.a"
)
