
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/attack_models.cpp" "src/CMakeFiles/sentinel_faults.dir/faults/attack_models.cpp.o" "gcc" "src/CMakeFiles/sentinel_faults.dir/faults/attack_models.cpp.o.d"
  "/root/repo/src/faults/fault_models.cpp" "src/CMakeFiles/sentinel_faults.dir/faults/fault_models.cpp.o" "gcc" "src/CMakeFiles/sentinel_faults.dir/faults/fault_models.cpp.o.d"
  "/root/repo/src/faults/injection_plan.cpp" "src/CMakeFiles/sentinel_faults.dir/faults/injection_plan.cpp.o" "gcc" "src/CMakeFiles/sentinel_faults.dir/faults/injection_plan.cpp.o.d"
  "/root/repo/src/faults/replay.cpp" "src/CMakeFiles/sentinel_faults.dir/faults/replay.cpp.o" "gcc" "src/CMakeFiles/sentinel_faults.dir/faults/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sentinel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sentinel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
