file(REMOVE_RECURSE
  "CMakeFiles/sentinel_cli.dir/sentinel_cli.cpp.o"
  "CMakeFiles/sentinel_cli.dir/sentinel_cli.cpp.o.d"
  "sentinel_cli"
  "sentinel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentinel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
