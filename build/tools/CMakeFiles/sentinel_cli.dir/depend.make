# Empty dependencies file for sentinel_cli.
# This may be replaced when dependencies are built.
