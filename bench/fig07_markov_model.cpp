// Fig. 7 reproduction: the correct Markov model M_C of the environment,
// estimated from a clean (no injection) month. Expected shape: a handful of
// key (temperature, humidity) states on the anti-correlation line -- the
// paper finds (12,94), (17,84), (24,70), (31,56) plus a low-occupancy
// fluctuation state it prunes -- with transitions chaining neighbouring
// states through the diurnal cycle.

#include <cstdio>
#include <iostream>

#include "common/scenario.h"

int main() {
  using namespace sentinel;

  const bench::ScenarioConfig sc;
  const bench::ScenarioResult r = bench::run_scenario({}, sc, nullptr);
  const auto& p = *r.pipeline;

  std::printf("# Fig. 7 -- correct Markov model M_C of the environment (clean month)\n");
  std::printf("# paper key states: (12,94) (17,84) (24,70) (31,56); low-probability\n");
  std::printf("# fluctuation states are pruned exactly as the paper prunes (16,27)\n\n");

  bench::print_chain(std::cout, p.m_c(), p.centroid_lookup(), "M_C (raw, with spurious states):");
  std::cout << '\n';
  bench::print_chain(std::cout, p.correct_model(), p.centroid_lookup(),
                     "M_C (pruned, user-facing):");

  std::printf("\nwindows processed: %zu, skipped: %zu\n", p.windows_processed(),
              p.windows_skipped());
  std::printf("delivered records: %zu (lost %zu, malformed %zu of %zu sampled)\n",
              r.sim.stats.delivered, r.sim.stats.lost, r.sim.stats.malformed,
              r.sim.stats.sampled);
  std::printf("network diagnosis on clean data: %s\n",
              core::to_string(p.diagnose_network()).c_str());
  return 0;
}
