// Fig. 11 + Table 7 reproduction: Dynamic Creation attack. One-third of the
// sensors inject high temperature / low humidity while the true environment
// sits in the cold night state ~(12,94), fabricating an observable state
// ~(25,69) that the environment never entered (the paper creates (25,69)
// from (12,95)).
//
// Expected shape: two *columns* of B^CO are not orthogonal -- the victim
// correct state emits both its own symbol and the fabricated one (the
// paper's row (12,95) splits 0.35/0.65) -- and the classifier reports a
// Dynamic Creation attack.

#include <cstdio>
#include <iostream>

#include "common/scenario.h"
#include "faults/attack_models.h"

int main() {
  using namespace sentinel;

  const bench::ScenarioConfig sc;

  const bench::ScenarioResult r =
      bench::run_scenario({}, sc, [&](faults::InjectionPlan& plan, const sim::Environment&) {
        for (const SensorId s : {7u, 8u, 9u}) {
          faults::CreationAttackConfig ac;
          ac.victim = faults::StateRegion{{12.0, 94.0}, 6.0};
          ac.created_state = {26.0, 90.0};
          ac.fraction = 0.3;
          ac.on_seconds = 4.0 * kSecondsPerHour;
          ac.off_seconds = 4.0 * kSecondsPerHour;
          plan.add(s, std::make_unique<faults::DynamicCreationAttack>(ac),
                   /*start_time=*/2.0 * kSecondsPerDay);
        }
      });
  const auto& p = *r.pipeline;
  const auto lookup = p.centroid_lookup();

  std::printf("# Fig. 11 + Table 7 -- Dynamic Creation attack (3/10 sensors malicious)\n\n");
  bench::print_emission(std::cout, p.m_co(), lookup, "Table 7 analogue -- B^CO:");

  const auto f = core::filter_emission(p.m_co(), p.significant_states(), false,
                                       r.pipeline_config.classifier);
  const auto orth = core::orthogonality(f, r.pipeline_config.classifier);
  std::printf("\ncol cross products: max %.3f (paper: columns (12,95) and (25,69) non-orthogonal)\n",
              orth.max_col_cross);
  for (const auto& [i, j] : orth.col_violations) {
    std::printf("  non-orthogonal columns: %s and %s\n", bench::state_label(i, lookup).c_str(),
                bench::state_label(j, lookup).c_str());
  }
  std::printf("row cross products: max %.3f (expected: orthogonal)\n", orth.max_row_cross);

  std::printf("\nclassification:\n%s", core::to_string(p.diagnose()).c_str());
  std::printf("\nexpected: network verdict attack/dynamic-creation\n");
  return 0;
}
