// ROC / latency sweep for the first-tier screens against the full HMM
// pipeline (EXPERIMENTS.md "Screen tier").
//
// Reuses the fig09/fig10/fig11 injection scenarios -- stuck-at on sensor 6,
// deletion and creation coalitions on {7,8,9} -- plus a clean control, over
// several simulation seeds. For each (kind, seed):
//
//  - the off-mode run (the historical pipeline) gives the HMM tier's
//    diagnosis accuracy and its detection latency (first filtered alarm on
//    an afflicted sensor at/after the injection start);
//  - a screen-mode run at the default thresholds gives the gated pipeline's
//    diagnosis accuracy -- the "accuracy loss" acceptance number;
//  - screen-mode runs across a threshold sweep trace the tier's ROC:
//    escalation recall on afflicted sensors, escalation latency, and the
//    false-escalation rate on healthy sensors (escalation edges per healthy
//    sensor-window, the direct driver of screen-mode cost: every false
//    escalation buys deescalate_after windows of full-path work).
//
// The simulated traces are generated once per (kind, seed) and replayed
// against every pipeline variant, so all columns describe the same data.

#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/scenario.h"
#include "core/pipeline.h"

namespace {

using namespace sentinel;

struct EscalationTrace {
  bool detected = false;      // every afflicted sensor escalated after start
  double latency_windows = 0; // mean, afflicted first-escalation - start
  std::size_t false_edges = 0;        // escalation edges on healthy sensors
  std::size_t healthy_sensor_windows = 0;
  bench::ScenarioScore score;         // diagnosis vs injected ground truth
};

/// Replay `trace` through a pipeline with `screen_cfg`, polling escalation
/// state per record so first-escalation times are exact to the window.
EscalationTrace replay_screened(const std::vector<SensorRecord>& trace,
                                core::PipelineConfig cfg,
                                const screen::ScreenConfig& screen_cfg,
                                const std::set<SensorId>& afflicted, std::size_t num_sensors,
                                double start_time, bench::InjectionKind kind) {
  cfg.screen = screen_cfg;
  core::DetectionPipeline p(cfg);
  std::vector<bool> was_escalated(num_sensors, true);  // unseen start escalated
  std::map<SensorId, double> first_escalation;
  EscalationTrace out;
  for (const auto& rec : trace) {
    p.add_record(rec);
    const auto* screens = p.screens();
    if (screens == nullptr) continue;
    for (SensorId s = 0; s < num_sensors; ++s) {
      const bool esc = screens->is_escalated(s);
      if (esc && !was_escalated[s] && afflicted.count(s) == 0) ++out.false_edges;
      // An afflicted sensor counts as caught from the first moment at/after
      // the injection start it sits on the full path -- whether the screens
      // just tripped or never let it de-escalate in the first place.
      if (esc && rec.time >= start_time && afflicted.count(s) != 0) {
        first_escalation.emplace(s, rec.time);
      }
      was_escalated[s] = esc;
    }
  }
  p.finish();
  out.detected = !afflicted.empty() && first_escalation.size() == afflicted.size();
  for (const auto& [s, t] : first_escalation) {
    out.latency_windows += (t - start_time) / cfg.window_seconds /
                           static_cast<double>(first_escalation.size());
  }
  out.healthy_sensor_windows =
      p.windows_processed() * (num_sensors - afflicted.size());
  out.score = bench::score_report(p.diagnose(), kind);
  return out;
}

/// First filtered alarm on any afflicted sensor at/after start, from the
/// off-mode run's history: the HMM tier's own detection latency.
double hmm_latency_windows(const core::DetectionPipeline& p,
                           const std::set<SensorId>& afflicted, double start_time) {
  for (const auto& w : p.history()) {
    if (w.window_start < start_time) continue;
    for (const auto& [sensor, info] : w.sensors) {
      if (info.filtered_alarm && afflicted.count(sensor) != 0) {
        return (w.window_start - start_time) / 3600.0;
      }
    }
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sentinel;

  std::size_t num_seeds = 5;
  double days = 31.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seeds=", 8) == 0) num_seeds = std::strtoul(argv[i] + 8, nullptr, 10);
    if (std::strncmp(argv[i], "--days=", 7) == 0) days = std::strtod(argv[i] + 7, nullptr);
  }

  const double start_time = 2.0 * kSecondsPerDay;
  const std::vector<bench::InjectionKind> kinds = {
      bench::InjectionKind::kClean, bench::InjectionKind::kStuckAt,
      bench::InjectionKind::kDeletion, bench::InjectionKind::kCreation};
  // (chi2, runs_z) operating points: the screen.h defaults (3.0, 3.2), the
  // BENCH_screen operating point (3.5, 3.5), and the sweep around them.
  const std::vector<std::pair<double, double>> sweep = {
      {2.0, 2.0}, {2.5, 2.6}, {3.0, 3.2}, {3.5, 3.5}, {4.0, 4.0}, {6.0, 6.0}};

  std::printf("# Screen-tier ROC / latency vs the HMM pipeline\n");
  std::printf("# %zu seed(s), %.0f days, injection from day %.0f; screens: window=16, warmup=8, K=24\n\n",
              num_seeds, days, start_time / kSecondsPerDay);

  // accuracy[mode][kind] = (detected, exact) counts over seeds.
  struct Acc {
    std::size_t detected = 0, exact = 0, runs = 0;
  };
  std::map<std::string, std::map<std::string, Acc>> accuracy;
  // roc[(chi2,runs_z)] aggregated over seeds and faulty kinds.
  struct RocRow {
    std::size_t detected = 0, faulty_runs = 0;
    double latency_sum = 0;
    std::size_t false_edges = 0, healthy_windows = 0;
  };
  std::map<std::pair<double, double>, RocRow> roc;
  double hmm_latency_sum = 0;
  std::size_t hmm_latency_n = 0;

  for (const auto kind : kinds) {
    const std::set<SensorId> afflicted =
        kind == bench::InjectionKind::kClean    ? std::set<SensorId>{}
        : kind == bench::InjectionKind::kStuckAt ? std::set<SensorId>{6}
                                                 : std::set<SensorId>{7, 8, 9};
    for (std::size_t i = 0; i < num_seeds; ++i) {
      bench::ScenarioConfig sc;
      sc.seed = 42 + i;
      sc.duration_days = days;
      // Off mode (the default ScenarioConfig): HMM-tier baseline.
      const bench::ScenarioResult base =
          bench::run_scenario({}, sc, bench::make_injection(kind, sc.seed, start_time));
      const auto base_score = bench::score_report(base.pipeline->diagnose(), kind);
      auto& off = accuracy["off"][bench::to_string(kind)];
      ++off.runs;
      off.detected += base_score.detected;
      off.exact += base_score.exact;
      if (!afflicted.empty()) {
        const double lat = hmm_latency_windows(*base.pipeline, afflicted, start_time);
        if (lat >= 0) {
          hmm_latency_sum += lat;
          ++hmm_latency_n;
        }
      }

      // Screen-mode replays over the same delivered trace.
      for (const auto& [chi2, runs_z] : sweep) {
        screen::ScreenConfig scfg;
        scfg.mode = screen::ScreenMode::kScreen;
        scfg.chi2_threshold = chi2;
        scfg.runs_z_threshold = runs_z;
        const EscalationTrace t =
            replay_screened(base.sim.trace, base.pipeline_config, scfg, afflicted,
                            sc.num_sensors, start_time, kind);
        auto& row = roc[{chi2, runs_z}];
        if (!afflicted.empty()) {
          ++row.faulty_runs;
          row.detected += t.detected;
          if (t.detected) row.latency_sum += t.latency_windows;
        }
        row.false_edges += t.false_edges;
        row.healthy_windows += t.healthy_sensor_windows;
        if (chi2 == 3.0) {  // default operating point: accuracy column
          auto& scr = accuracy["screen"][bench::to_string(kind)];
          ++scr.runs;
          scr.detected += t.score.detected;
          scr.exact += t.score.exact;
        }
      }
    }
  }

  std::printf("## Diagnosis accuracy: screen_mode=off vs screen (chi2=3.0, runs_z=3.2)\n");
  std::printf("%-12s %-22s %-22s\n", "scenario", "off detected/exact", "screen detected/exact");
  for (const auto kind : kinds) {
    const auto& off = accuracy["off"][bench::to_string(kind)];
    const auto& scr = accuracy["screen"][bench::to_string(kind)];
    std::printf("%-12s %zu/%zu of %zu            %zu/%zu of %zu\n", bench::to_string(kind),
                off.detected, off.exact, off.runs, scr.detected, scr.exact, scr.runs);
  }

  std::printf("\n## Screen-tier ROC over (chi2, runs_z) -- faulty kinds pooled\n");
  std::printf("%-14s %-10s %-18s %-24s\n", "(chi2,runs_z)", "recall", "latency (windows)",
              "false esc / healthy k-windows");
  for (const auto& [point, row] : roc) {
    const double recall =
        row.faulty_runs ? static_cast<double>(row.detected) / row.faulty_runs : 0.0;
    const double lat = row.detected ? row.latency_sum / row.detected : -1.0;
    const double fp_rate = row.healthy_windows
                               ? 1000.0 * static_cast<double>(row.false_edges) / row.healthy_windows
                               : 0.0;
    std::printf("(%.1f, %.1f)     %-10.2f %-18.1f %.2f\n", point.first, point.second, recall,
                lat, fp_rate);
  }
  if (hmm_latency_n > 0) {
    std::printf("\nHMM tier (off mode) detection latency: %.1f windows mean over %zu runs\n",
                hmm_latency_sum / hmm_latency_n, hmm_latency_n);
  }
  return 0;
}
