// Extension bench A1: end-to-end classification confusion matrix.
//
// Every fault/attack type of section 3.3 (plus clean and benign controls) is
// injected into independent seeded deployments; the resulting diagnosis is
// tallied against the injected ground truth. The paper demonstrates one
// instance of each class; this bench measures how reliably the structural
// classification reproduces across random weather, noise and packet loss.
//
// Expected shape: high exact-classification rates for stuck-at, calibration,
// additive, creation and deletion; random-noise is allowed to blur into
// "none"/unknown (paper section 3.4 says it cannot be reliably separated);
// clean and benign runs must stay quiet.

#include <cstdio>
#include <map>

#include "common/scenario.h"

int main() {
  using namespace sentinel;
  constexpr std::size_t kTrials = 5;

  std::printf("# A1 -- classification accuracy over %zu seeded trials per scenario\n", kTrials);
  std::printf("%-14s %9s %7s   observed outcomes\n", "injected", "detected", "exact");

  std::size_t total_detected = 0, total_exact = 0, total = 0;
  for (const auto kind : bench::all_injection_kinds()) {
    std::size_t detected = 0, exact = 0;
    std::map<std::string, std::size_t> outcomes;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      bench::ScenarioConfig sc;
      sc.duration_days = 14.0;
      sc.seed = 1000 + 77 * trial;
      const auto inject = bench::make_injection(kind, sc.seed);
      const auto r = bench::run_scenario({}, sc, inject);
      const auto score = bench::score_report(r.pipeline->diagnose(), kind);
      detected += score.detected;
      exact += score.exact;
      ++outcomes[core::to_string(score.verdict) + "/" + core::to_string(score.kind)];
    }
    total_detected += detected;
    total_exact += exact;
    total += kTrials;

    std::string outcome_str;
    for (const auto& [name, count] : outcomes) {
      outcome_str += name + " x" + std::to_string(count) + "  ";
    }
    std::printf("%-14s %6zu/%zu %5zu/%zu   %s\n", bench::to_string(kind), detected, kTrials,
                exact, kTrials, outcome_str.c_str());
  }

  std::printf("\noverall: detected %zu/%zu, exact %zu/%zu\n", total_detected, total, total_exact,
              total);
  return 0;
}
