// Fig. 12 reproduction: raw alarms generated for a faulty and a non-faulty
// node. Expected shape: the healthy node shows a sparse scatter of raw
// alarms (the paper measures ~1.5% false-alarm rate); the faulty node's raw
// alarms switch on solidly once the fault manifests. Filtering (k-of-n)
// suppresses the isolated false alarms.

#include <cstdio>

#include "common/scenario.h"
#include "faults/fault_models.h"

int main() {
  using namespace sentinel;

  const bench::ScenarioConfig sc;
  const double fault_start = 10.0 * kSecondsPerDay;

  const bench::ScenarioResult r =
      bench::run_scenario({}, sc, [&](faults::InjectionPlan& plan, const sim::Environment&) {
        plan.add(6, std::make_unique<faults::StuckAtFault>(AttrVec{15.0, 1.0}), fault_start);
      });
  const auto& p = *r.pipeline;

  std::printf("# Fig. 12 -- raw alarms for faulty sensor 6 (stuck-at from day 10) and\n");
  std::printf("# healthy sensor 9, one line per window (. = no alarm, R = raw alarm,\n");
  std::printf("# F = raw alarm while filtered alarm active)\n\n");

  std::size_t raw6 = 0, raw9 = 0, n6 = 0, n9 = 0;
  std::size_t raw9_prefault = 0, n9_prefault = 0;
  std::string row6, row9;
  for (const auto& w : p.history()) {
    const auto render = [&](SensorId id, std::string& row, std::size_t& raw, std::size_t& n) {
      const auto it = w.sensors.find(id);
      if (it == w.sensors.end()) {
        row += ' ';
        return;
      }
      ++n;
      if (it->second.raw_alarm) {
        ++raw;
        row += it->second.filtered_alarm ? 'F' : 'R';
      } else {
        row += '.';
      }
    };
    render(6, row6, raw6, n6);
    render(9, row9, raw9, n9);
    if (w.window_start < fault_start) {
      const auto it = w.sensors.find(9);
      if (it != w.sensors.end()) {
        ++n9_prefault;
        if (it->second.raw_alarm) ++raw9_prefault;
      }
    }
  }

  // Print as day-per-line strips (24 windows/day).
  const auto print_strip = [](const char* name, const std::string& row) {
    std::printf("%s\n", name);
    for (std::size_t i = 0; i < row.size(); i += 24) {
      std::printf("  day %2zu |%s|\n", i / 24 + 1, row.substr(i, 24).c_str());
    }
  };
  print_strip("sensor 6 (faulty):", row6);
  print_strip("sensor 9 (healthy):", row9);

  std::printf("\nraw alarm rate, sensor 6: %.1f%% of %zu windows\n",
              100.0 * static_cast<double>(raw6) / static_cast<double>(n6), n6);
  std::printf("raw alarm rate, sensor 9: %.1f%% of %zu windows (paper: ~1.5%% for healthy)\n",
              100.0 * static_cast<double>(raw9) / static_cast<double>(n9), n9);
  std::printf("filtered alarms active for sensor 9: %s\n",
              p.alarms().filtered_active(9) ? "yes (unexpected)" : "no");
  return 0;
}
