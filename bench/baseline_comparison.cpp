// Ablation A5: Sentinel vs the two baselines.
//
//  - Warrender-style HMM detector (the paper's section 2 comparator): needs
//    an attack-free training phase, Baum-Welch training cost, flags windows
//    whose likelihood drops -- but cannot say *what* happened.
//  - Median-deviation detector: no training, flags outlier sensors, blind to
//    the anomaly type and to where the network-level state semantics break.
//  - Sentinel (this paper): no separate training phase, detects, and
//    classifies the anomaly type.
//
// Expected shape: all three notice a blunt stuck-at; only Sentinel names it.
// On the Dynamic Creation attack, the median detector flags the coalition
// sensors, Warrender flags unfamiliar symbol windows, Sentinel both detects
// and classifies the attack.

#include <chrono>
#include <cstdio>

#include "baseline/markov_detector.h"
#include "baseline/median_detector.h"
#include "baseline/warrender.h"
#include "common/scenario.h"
#include "trace/windower.h"

namespace {

using namespace sentinel;

std::vector<hmm::StateId> observable_sequence(const core::DetectionPipeline& p) {
  std::vector<hmm::StateId> seq;
  for (const auto& w : p.history()) seq.push_back(w.observable);
  return seq;
}

}  // namespace

int main() {
  using namespace sentinel;
  const double onset = 2.0 * kSecondsPerDay;

  // Clean run: training data for Warrender.
  bench::ScenarioConfig clean_sc;
  clean_sc.duration_days = 14.0;
  const auto clean = bench::run_scenario({}, clean_sc, nullptr);
  const auto train_seq = observable_sequence(*clean.pipeline);

  baseline::WarrenderDetector warrender(baseline::WarrenderConfig{});
  const auto t0 = std::chrono::steady_clock::now();
  const auto train_stats = warrender.train(train_seq);
  const auto train_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  baseline::MarkovChainDetector markov((baseline::MarkovDetectorConfig()));
  const auto m0 = std::chrono::steady_clock::now();
  const auto markov_stats = markov.train(train_seq);
  const auto markov_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - m0)
                             .count();

  std::printf("# A5 -- detector comparison\n");
  std::printf("warrender training: %zu Baum-Welch iterations, %.1f ms, eta = %.3f\n",
              train_stats.iterations, train_ms, train_stats.threshold);
  std::printf("markov-chain training: %zu states, %.2f ms, eta = %.3f\n\n",
              markov_stats.states, markov_ms, markov_stats.threshold);
  std::printf("%-14s %-12s %-22s %-22s %-18s\n", "scenario", "detector", "detects?",
              "classification", "notes");

  const bench::InjectionKind scenarios[] = {bench::InjectionKind::kStuckAt,
                                            bench::InjectionKind::kCreation,
                                            bench::InjectionKind::kDeletion};
  for (const auto kind : scenarios) {
    bench::ScenarioConfig sc;
    sc.duration_days = 14.0;
    const auto r = bench::run_scenario({}, sc, bench::make_injection(kind, sc.seed, onset));
    const auto& p = *r.pipeline;

    // Sentinel.
    const auto score = bench::score_report(p.diagnose(), kind);
    std::printf("%-14s %-12s %-22s %-22s %-18s\n", bench::to_string(kind), "sentinel",
                score.detected ? "yes" : "no", core::to_string(score.kind).c_str(),
                "no training phase");

    // Warrender on the attacked observable sequence.
    const auto test_seq = observable_sequence(p);
    const auto flags = warrender.detect(test_seq);
    std::size_t flagged = 0, post = 0;
    for (std::size_t i = 0; i < flags.size(); ++i) {
      if (p.history()[i].window_start < onset) continue;
      ++post;
      flagged += flags[i];
    }
    char wbuf[64];
    std::snprintf(wbuf, sizeof wbuf, "%.0f%% windows flagged",
                  100.0 * static_cast<double>(flagged) / static_cast<double>(post));
    std::printf("%-14s %-12s %-22s %-22s %-18s\n", "", "warrender", wbuf, "(cannot classify)",
                "needs clean train");

    // Markov-chain detector on the same observable sequence.
    const auto mflags = markov.detect(test_seq);
    std::size_t mflagged = 0, mpost = 0;
    for (std::size_t i = 0; i < mflags.size(); ++i) {
      if (p.history()[i].window_start < onset) continue;
      ++mpost;
      mflagged += mflags[i];
    }
    char mcbuf[64];
    std::snprintf(mcbuf, sizeof mcbuf, "%.0f%% windows flagged",
                  100.0 * static_cast<double>(mflagged) / static_cast<double>(mpost));
    std::printf("%-14s %-12s %-22s %-22s %-18s\n", "", "markov", mcbuf, "(cannot classify)",
                "needs clean train");

    // Median detector over the same trace.
    baseline::MedianDetector median_det(baseline::MedianDetectorConfig{});
    for (const auto& w : window_trace(r.sim.trace, r.pipeline_config.window_seconds)) {
      if (!w.empty()) median_det.process(w);
    }
    std::size_t flagged_sensors = 0;
    for (SensorId s = 0; s < 10; ++s) {
      const std::size_t wn = median_det.windows(s);
      if (wn > 0 && static_cast<double>(median_det.flags(s)) / static_cast<double>(wn) > 0.05) {
        ++flagged_sensors;
      }
    }
    char mbuf[64];
    std::snprintf(mbuf, sizeof mbuf, "%zu sensors flagged", flagged_sensors);
    std::printf("%-14s %-12s %-22s %-22s %-18s\n", "", "median", mbuf, "(cannot classify)",
                "no state semantics");
  }
  return 0;
}
