// Ablation A4: alarm-filter comparison. The paper proposes the simple k-of-n
// rule and points at SPRT and CUSUM as the principled alternatives; this
// bench runs all three on the same stuck-at scenario and reports detection
// latency and filtered false alarms on healthy sensors.
//
// Expected shape: all three detect a hard stuck-at quickly; SPRT/CUSUM give
// lower filtered false-alarm rates for comparable latency because they
// integrate evidence instead of counting.

#include <cstdio>
#include <optional>

#include "common/scenario.h"

int main() {
  using namespace sentinel;
  const double fault_start = 3.0 * kSecondsPerDay;

  std::printf("# A4 -- alarm filter comparison (stuck-at on sensor 6 at day 3, 14-day runs)\n");
  std::printf("%8s %14s %22s %22s\n", "filter", "latency_h", "healthy_filtered_rate",
              "healthy_raw_rate");

  const struct {
    core::FilterKind kind;
    const char* name;
  } filters[] = {{core::FilterKind::kKofN, "kofn"},
                 {core::FilterKind::kSprt, "sprt"},
                 {core::FilterKind::kCusum, "cusum"}};

  for (const auto& f : filters) {
    bench::ScenarioConfig sc;
    sc.duration_days = 14.0;
    sc.filter = f.kind;
    const auto r = bench::run_scenario(
        {}, sc, bench::make_injection(bench::InjectionKind::kStuckAt, sc.seed, fault_start));
    const auto& p = *r.pipeline;

    std::optional<double> latency;
    std::size_t healthy_filtered = 0, healthy_raw = 0, healthy_n = 0;
    for (const auto& hist : p.history()) {
      const auto it6 = hist.sensors.find(6);
      if (!latency && it6 != hist.sensors.end() && it6->second.filtered_alarm &&
          hist.window_start >= fault_start) {
        latency = (hist.window_start - fault_start) / kSecondsPerHour;
      }
      for (const auto& [id, info] : hist.sensors) {
        if (id == 6) continue;
        ++healthy_n;
        healthy_filtered += info.filtered_alarm;
        healthy_raw += info.raw_alarm;
      }
    }
    std::printf("%8s %14s %21.3f%% %21.3f%%\n", f.name,
                latency ? std::to_string(*latency).substr(0, 6).c_str() : "miss",
                100.0 * static_cast<double>(healthy_filtered) / static_cast<double>(healthy_n),
                100.0 * static_cast<double>(healthy_raw) / static_cast<double>(healthy_n));
  }

  // k-of-n operating-point grid: the latency / false-alarm trade the paper's
  // "k raw alarms in the last n time steps" rule offers.
  std::printf("\nk-of-n grid (same scenario):\n");
  std::printf("%8s %14s %22s\n", "k/n", "latency_h", "healthy_filtered_rate");
  const std::pair<std::size_t, std::size_t> grid[] = {{1, 1}, {1, 3}, {2, 3}, {2, 5},
                                                      {3, 5}, {4, 5}, {5, 8}, {7, 8}};
  for (const auto& [k, n] : grid) {
    bench::ScenarioConfig sc;
    sc.duration_days = 14.0;
    auto r = bench::run_scenario(
        {}, sc, bench::make_injection(bench::InjectionKind::kStuckAt, sc.seed, fault_start));
    // Rebuild the pipeline with the custom filter over the same trace.
    core::PipelineConfig pc = r.pipeline_config;
    pc.alarm_filter.kind = core::FilterKind::kKofN;
    pc.alarm_filter.k = k;
    pc.alarm_filter.n = n;
    core::DetectionPipeline p(pc);
    p.process_trace(r.sim.trace);

    std::optional<double> latency;
    std::size_t healthy_filtered = 0, healthy_n = 0;
    for (const auto& hist : p.history()) {
      const auto it6 = hist.sensors.find(6);
      if (!latency && it6 != hist.sensors.end() && it6->second.filtered_alarm &&
          hist.window_start >= fault_start) {
        latency = (hist.window_start - fault_start) / kSecondsPerHour;
      }
      for (const auto& [id, info] : hist.sensors) {
        if (id == 6) continue;
        ++healthy_n;
        healthy_filtered += info.filtered_alarm;
      }
    }
    char kn[16];
    std::snprintf(kn, sizeof kn, "%zu/%zu", k, n);
    std::printf("%8s %14s %21.3f%%\n", kn,
                latency ? std::to_string(*latency).substr(0, 6).c_str() : "miss",
                100.0 * static_cast<double>(healthy_filtered) / static_cast<double>(healthy_n));
  }
  std::printf("\nexpected: k=1 reacts instantly but passes isolated false alarms through;\n");
  std::printf("larger k/n suppresses them at the cost of latency\n");
  return 0;
}
