// Shared experiment harness for the reproduction benches: builds the
// GDI-like deployment (DESIGN.md substitution #1), wires an injection plan,
// runs the detection pipeline over the delivered trace, and prints matrices
// in the paper's "(temperature,humidity)"-labelled table style.

#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "core/pipeline.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"

namespace sentinel::bench {

struct ScenarioConfig {
  double duration_days = 31.0;  // the paper analyzes one month
  std::size_t num_sensors = 10;
  std::uint64_t seed = 42;
  double packet_loss = 0.12;
  double malform_prob = 0.01;
  double noise_sigma = 0.4;
  std::size_t initial_states = 6;  // paper Table 1: M = 6
  core::FilterKind filter = core::FilterKind::kKofN;
  // Table 1 knobs, exposed for the ablation benches.
  std::size_t window_samples = 12;  // w, in 5-minute samples
  double alpha = 0.10;
  double beta = 0.90;
  double gamma = 0.90;
  // First-tier screen configuration (default off: the historical path).
  // screen_roc sweeps the thresholds to trace the tier's ROC against the
  // HMM pipeline on the same injected traces.
  screen::ScreenConfig screen;
};

struct ScenarioResult {
  std::unique_ptr<core::DetectionPipeline> pipeline;  // already fed the trace
  sim::SimulationResult sim;
  core::PipelineConfig pipeline_config;
};

/// Initial model states via offline k-means on the environment's own
/// history (paper section 4.1: "an off-line clustering algorithm on the
/// entire data").
std::vector<AttrVec> initial_states_from_env(const sim::Environment& env,
                                             double duration_seconds, std::size_t k,
                                             std::uint64_t seed);

/// Pipeline configuration for a scenario (Table 1 parameters + DESIGN.md
/// clustering thresholds).
core::PipelineConfig make_pipeline_config(const sim::Environment& env,
                                          const ScenarioConfig& cfg);

/// Simulate the deployment with `inject` populating the fault/attack plan
/// (may be null for a clean run), then run the pipeline over the trace.
using InjectFn = std::function<void(faults::InjectionPlan&, const sim::Environment&)>;
ScenarioResult run_scenario(const sim::GdiEnvironmentConfig& env_cfg, const ScenarioConfig& cfg,
                            const InjectFn& inject);

/// Canonical injection scenarios used by the accuracy / ablation benches:
/// every error and attack type of section 3.3 plus clean and benign controls.
enum class InjectionKind {
  kClean,
  kStuckAt,
  kCalibration,
  kAdditive,
  kRandomNoise,
  kCreation,
  kDeletion,
  kChange,
  kMixed,
  kBenign,
};

const char* to_string(InjectionKind kind);

/// All kinds, in enum order.
std::vector<InjectionKind> all_injection_kinds();

/// Build the injector for a kind. Error kinds afflict sensor 6; attack
/// coalitions are sensors {7,8,9} (fraction 0.3) except Change, which uses
/// {6,7,8,9} (fraction 0.4) so the shifted observable state stays inside the
/// attributes' admissible ranges. Injection starts at `start_time`.
InjectFn make_injection(InjectionKind kind, std::uint64_t seed,
                        double start_time = 2.0 * kSecondsPerDay);

/// Ground truth the classifier should produce for a kind.
core::Verdict expected_verdict(InjectionKind kind);
core::AnomalyKind expected_kind(InjectionKind kind);

/// Score one diagnosis report against the injected ground truth: exact if
/// both verdict and kind match, detected if the verdict matches.
struct ScenarioScore {
  bool detected = false;   // verdict matches ground truth
  bool exact = false;      // kind also matches
  core::Verdict verdict = core::Verdict::kNormal;
  core::AnomalyKind kind = core::AnomalyKind::kNone;
};
ScenarioScore score_report(const core::DiagnosisReport& report, InjectionKind injected);

/// "(24,70)"-style label for a model state (the paper's table headers).
std::string state_label(hmm::StateId id, const core::CentroidLookup& lookup);

/// Print an emission matrix with labelled rows/columns, paper-table style.
void print_emission(std::ostream& os, const hmm::OnlineHmm& m,
                    const core::CentroidLookup& lookup, const std::string& title);

/// Print a filtered emission matrix (post spurious-state removal).
void print_filtered(std::ostream& os, const core::FilteredEmission& f,
                    const core::CentroidLookup& lookup, const std::string& title);

/// Print a Markov chain with labelled states (Fig. 7 style).
void print_chain(std::ostream& os, const hmm::MarkovChain& chain,
                 const core::CentroidLookup& lookup, const std::string& title);

}  // namespace sentinel::bench
