#include "common/scenario.h"

#include <cstdio>
#include <ostream>

#include "core/offline_kmeans.h"
#include "faults/attack_models.h"
#include "faults/fault_models.h"
#include "util/thread_pool.h"
#include "util/vecn.h"

namespace sentinel::bench {

std::vector<AttrVec> initial_states_from_env(const sim::Environment& env,
                                             double duration_seconds, std::size_t k,
                                             std::uint64_t seed) {
  std::vector<AttrVec> history;
  for (double t = 0.0; t < duration_seconds; t += 30.0 * kSecondsPerMinute) {
    history.push_back(env.truth(t));
  }
  Rng rng(seed, "offline-kmeans");
  return core::kmeans(history, k, rng).centroids;
}

core::PipelineConfig make_pipeline_config(const sim::Environment& env,
                                          const ScenarioConfig& cfg) {
  core::PipelineConfig pc;
  // Table 1 defaults: w = 12 samples, alpha = 0.10, beta = gamma = 0.90.
  pc.window_seconds = static_cast<double>(cfg.window_samples) * 5.0 * kSecondsPerMinute;
  pc.initial_states = initial_states_from_env(env, cfg.duration_days * kSecondsPerDay,
                                              cfg.initial_states, cfg.seed);
  pc.beta = cfg.beta;
  pc.gamma = cfg.gamma;
  pc.model_states.alpha = cfg.alpha;
  pc.alarm_filter.kind = cfg.filter;
  pc.screen = cfg.screen;
  return pc;
}

ScenarioResult run_scenario(const sim::GdiEnvironmentConfig& env_cfg, const ScenarioConfig& cfg,
                            const InjectFn& inject) {
  sim::GdiEnvironmentConfig ec = env_cfg;
  ec.duration_seconds = cfg.duration_days * kSecondsPerDay;
  ec.seed = cfg.seed;
  const sim::GdiEnvironment env(ec);

  sim::GdiDeploymentConfig dc;
  dc.num_sensors = cfg.num_sensors;
  dc.packet_loss = cfg.packet_loss;
  dc.malform_prob = cfg.malform_prob;
  dc.noise_sigma = cfg.noise_sigma;
  dc.seed = cfg.seed;
  sim::Simulator simulator = sim::make_gdi_deployment(env, dc);

  auto plan = std::make_shared<faults::InjectionPlan>();
  if (inject) inject(*plan, env);
  simulator.set_transform(faults::make_transform(plan));

  ScenarioResult result;
  // Motes are independent, so trace generation fans out over the shared
  // pool; the merged trace is bit-identical to a serial run (see
  // Simulator::run(duration, pool)), so every bench stays reproducible.
  result.sim = simulator.run(ec.duration_seconds, util::ThreadPool::shared());
  result.pipeline_config = make_pipeline_config(env, cfg);
  result.pipeline = std::make_unique<core::DetectionPipeline>(result.pipeline_config);
  result.pipeline->process_trace(result.sim.trace);
  return result;
}

const char* to_string(InjectionKind kind) {
  switch (kind) {
    case InjectionKind::kClean: return "clean";
    case InjectionKind::kStuckAt: return "stuck-at";
    case InjectionKind::kCalibration: return "calibration";
    case InjectionKind::kAdditive: return "additive";
    case InjectionKind::kRandomNoise: return "random-noise";
    case InjectionKind::kCreation: return "creation";
    case InjectionKind::kDeletion: return "deletion";
    case InjectionKind::kChange: return "change";
    case InjectionKind::kMixed: return "mixed";
    case InjectionKind::kBenign: return "benign";
  }
  return "?";
}

std::vector<InjectionKind> all_injection_kinds() {
  return {InjectionKind::kClean,     InjectionKind::kStuckAt,  InjectionKind::kCalibration,
          InjectionKind::kAdditive,  InjectionKind::kRandomNoise, InjectionKind::kCreation,
          InjectionKind::kDeletion,  InjectionKind::kChange,   InjectionKind::kMixed,
          InjectionKind::kBenign};
}

InjectFn make_injection(InjectionKind kind, std::uint64_t seed, double start_time) {
  using namespace faults;
  const std::vector<SensorId> coalition{7, 8, 9};

  switch (kind) {
    case InjectionKind::kClean:
      return nullptr;
    case InjectionKind::kStuckAt:
      return [start_time](InjectionPlan& plan, const sim::Environment&) {
        plan.add(6, std::make_unique<StuckAtFault>(AttrVec{15.0, 1.0}), start_time);
      };
    case InjectionKind::kCalibration:
      return [start_time](InjectionPlan& plan, const sim::Environment&) {
        plan.add(6, std::make_unique<CalibrationFault>(AttrVec{0.70, 0.80}), start_time);
      };
    case InjectionKind::kAdditive:
      return [start_time](InjectionPlan& plan, const sim::Environment&) {
        plan.add(6, std::make_unique<AdditiveFault>(AttrVec{8.0, 5.0}), start_time);
      };
    case InjectionKind::kRandomNoise:
      return [start_time, seed](InjectionPlan& plan, const sim::Environment&) {
        plan.add(6, std::make_unique<RandomNoiseFault>(10.0, seed), start_time);
      };
    case InjectionKind::kCreation:
      return [start_time, coalition](InjectionPlan& plan, const sim::Environment&) {
        for (const SensorId s : coalition) {
          CreationAttackConfig ac;
          ac.victim = StateRegion{{12.0, 94.0}, 6.0};
          ac.created_state = {26.0, 90.0};
          ac.fraction = 0.3;
          plan.add(s, std::make_unique<DynamicCreationAttack>(ac), start_time);
        }
      };
    case InjectionKind::kDeletion:
      return [start_time, coalition](InjectionPlan& plan, const sim::Environment&) {
        for (const SensorId s : coalition) {
          DeletionAttackConfig ac;
          ac.deleted = StateRegion{{31.0, 56.0}, 7.0};
          ac.hold_state = {24.0, 70.0};
          ac.fraction = 0.3;
          plan.add(s, std::make_unique<DynamicDeletionAttack>(ac), start_time);
        }
      };
    case InjectionKind::kChange:
      return [start_time](InjectionPlan& plan, const sim::Environment&) {
        for (const SensorId s : {6u, 7u, 8u, 9u}) {
          ChangeAttackConfig ac;
          ac.victim = StateRegion{{12.0, 94.0}, 8.0};
          ac.observed_as = {18.0, 60.0};
          ac.fraction = 0.4;
          plan.add(s, std::make_unique<DynamicChangeAttack>(ac), start_time);
        }
      };
    case InjectionKind::kMixed:
      return [start_time, coalition](InjectionPlan& plan, const sim::Environment&) {
        for (const SensorId s : coalition) {
          CreationAttackConfig cc;
          cc.victim = StateRegion{{12.0, 94.0}, 6.0};
          cc.created_state = {26.0, 90.0};
          cc.fraction = 0.3;
          DeletionAttackConfig dc;
          dc.deleted = StateRegion{{31.0, 56.0}, 7.0};
          dc.hold_state = {24.0, 70.0};
          dc.fraction = 0.3;
          plan.add(s, std::make_unique<MixedAttack>(cc, dc), start_time);
        }
      };
    case InjectionKind::kBenign:
      return [start_time, seed, coalition](InjectionPlan& plan, const sim::Environment&) {
        for (const SensorId s : coalition) {
          plan.add(s, std::make_unique<BenignAttack>(0.4, seed + s), start_time);
        }
      };
  }
  return nullptr;
}

core::Verdict expected_verdict(InjectionKind kind) {
  switch (kind) {
    case InjectionKind::kClean:
    case InjectionKind::kBenign:
      return core::Verdict::kNormal;
    case InjectionKind::kStuckAt:
    case InjectionKind::kCalibration:
    case InjectionKind::kAdditive:
    case InjectionKind::kRandomNoise:
      return core::Verdict::kError;
    default:
      return core::Verdict::kAttack;
  }
}

core::AnomalyKind expected_kind(InjectionKind kind) {
  switch (kind) {
    case InjectionKind::kClean:
    case InjectionKind::kBenign:
      return core::AnomalyKind::kNone;
    case InjectionKind::kStuckAt: return core::AnomalyKind::kStuckAt;
    case InjectionKind::kCalibration: return core::AnomalyKind::kCalibration;
    case InjectionKind::kAdditive: return core::AnomalyKind::kAdditive;
    case InjectionKind::kRandomNoise: return core::AnomalyKind::kRandomNoise;
    case InjectionKind::kCreation: return core::AnomalyKind::kDynamicCreation;
    case InjectionKind::kDeletion: return core::AnomalyKind::kDynamicDeletion;
    case InjectionKind::kChange: return core::AnomalyKind::kDynamicChange;
    case InjectionKind::kMixed: return core::AnomalyKind::kMixedAttack;
  }
  return core::AnomalyKind::kNone;
}

ScenarioScore score_report(const core::DiagnosisReport& report, InjectionKind injected) {
  ScenarioScore score;
  const core::Verdict want_verdict = expected_verdict(injected);
  const core::AnomalyKind want_kind = expected_kind(injected);

  switch (want_verdict) {
    case core::Verdict::kAttack:
      score.verdict = report.network.verdict;
      score.kind = report.network.kind;
      break;
    case core::Verdict::kError: {
      // Errors are diagnosed per sensor; the injected sensor is 6.
      const auto it = report.sensors.find(6);
      if (it != report.sensors.end()) {
        score.verdict = it->second.verdict;
        score.kind = it->second.kind;
      } else {
        score.verdict = core::Verdict::kNormal;
        score.kind = core::AnomalyKind::kNone;
      }
      break;
    }
    case core::Verdict::kNormal: {
      // Clean/benign: the network must be clean and no sensor may carry an
      // error or attack diagnosis.
      score.verdict = report.network.verdict;
      score.kind = report.network.kind;
      for (const auto& [id, d] : report.sensors) {
        if (d.verdict != core::Verdict::kNormal) {
          score.verdict = d.verdict;
          score.kind = d.kind;
        }
      }
      break;
    }
  }
  score.detected = score.verdict == want_verdict;
  score.exact = score.detected && score.kind == want_kind;
  return score;
}

std::string state_label(hmm::StateId id, const core::CentroidLookup& lookup) {
  if (id == hmm::kBottomSymbol) return "_|_";
  if (const auto c = lookup(id)) return vecn::to_string(*c, 0);
  return "s" + std::to_string(id);
}

namespace {

void print_matrix_labelled(std::ostream& os, const Matrix& b,
                           const std::vector<std::string>& row_labels,
                           const std::vector<std::string>& col_labels) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%10s", "");
  os << buf;
  for (const auto& cl : col_labels) {
    std::snprintf(buf, sizeof buf, " %9s", cl.c_str());
    os << buf;
  }
  os << '\n';
  for (std::size_t r = 0; r < b.rows(); ++r) {
    std::snprintf(buf, sizeof buf, "%10s", row_labels[r].c_str());
    os << buf;
    for (std::size_t c = 0; c < b.cols(); ++c) {
      std::snprintf(buf, sizeof buf, " %9.3f", b(r, c));
      os << buf;
    }
    os << '\n';
  }
}

}  // namespace

void print_emission(std::ostream& os, const hmm::OnlineHmm& m,
                    const core::CentroidLookup& lookup, const std::string& title) {
  // Print the long-run (decreasing-gain) estimate -- the matrix the
  // classifier actually analyzes; see OnlineHmm::emission_matrix_avg().
  os << title << '\n';
  std::vector<std::string> rows, cols;
  for (const auto id : m.hidden_states()) rows.push_back(state_label(id, lookup));
  for (const auto id : m.symbols()) cols.push_back(state_label(id, lookup));
  print_matrix_labelled(os, m.emission_matrix_avg(), rows, cols);
}

void print_filtered(std::ostream& os, const core::FilteredEmission& f,
                    const core::CentroidLookup& lookup, const std::string& title) {
  os << title << '\n';
  if (f.empty()) {
    os << "  (empty)\n";
    return;
  }
  std::vector<std::string> rows, cols;
  for (const auto id : f.hidden) rows.push_back(state_label(id, lookup));
  for (const auto id : f.symbols) cols.push_back(state_label(id, lookup));
  print_matrix_labelled(os, f.b, rows, cols);
}

void print_chain(std::ostream& os, const hmm::MarkovChain& chain,
                 const core::CentroidLookup& lookup, const std::string& title) {
  os << title << '\n';
  const auto ids = chain.states();
  std::vector<std::string> labels;
  for (const auto id : ids) labels.push_back(state_label(id, lookup));
  print_matrix_labelled(os, chain.transition_matrix(), labels, labels);
  const auto occ = chain.occupancy();
  os << "occupancy:";
  char buf[64];
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::snprintf(buf, sizeof buf, " %s=%.3f", labels[i].c_str(), occ[i]);
    os << buf;
  }
  os << '\n';
}

}  // namespace sentinel::bench
