// P2 -- google-benchmark: trace I/O data plane throughput. The collector
// tier re-reads traces constantly (replay, re-training, every repro bench
// starts by loading a file), so parse speed is a real budget item. This
// bench measures MB/s and records/s for four read paths over the same
// on-disk trace:
//
//   getline_baseline  the seed's parser, copied verbatim below: getline +
//                     csv::split into std::string fields + strtod through a
//                     heap-copied buffer. Every line costs ~a dozen
//                     allocations. Kept as the yardstick the zero-copy
//                     paths are measured against.
//   csv_read_trace    today's read_trace (istream + getline, shared
//                     zero-allocation line grammar).
//   csv_zero_copy     CsvTraceReader: mmap, string_view slicing,
//                     from_chars, batch reuse.
//   binary            BinaryTraceReader over the SNTRB1 fixed-width format:
//                     no parsing at all, just offset decoding.
//
// plus end-to-end file -> FleetReport runs (streaming ingest) for the CSV
// and binary formats, where parse cost is diluted by detection work.
//
// Results are recorded in BENCH_io.json (see docs/PERFORMANCE.md).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include "core/fleet.h"
#include "faults/fault_models.h"
#include "metrics_main.h"
#include "faults/injection_plan.h"
#include "sim/simulator.h"
#include "trace/binary_trace.h"
#include "trace/trace_io.h"
#include "trace/trace_reader.h"
#include "util/csv.h"

namespace {

using namespace sentinel;

// --- the seed's parser, verbatim (allocation-heavy baseline) ---------------

namespace baseline {

std::optional<double> parse_double(std::string_view field) {
  if (field.empty()) return std::nullopt;
  // strtod needs a NUL-terminated buffer.
  std::string buf(field);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

TraceReadResult read_trace(std::istream& in, std::size_t expected_dims) {
  TraceReadResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.front() == '#') {
      ++result.comment_lines;
      continue;
    }
    const auto fields = csv::split(line);  // vector<string>: one copy per field
    if (fields.size() < 3) {
      ++result.malformed_lines;
      continue;
    }
    const std::size_t dims = fields.size() - 2;
    if (expected_dims == 0) {
      expected_dims = dims;
    }
    if (dims != expected_dims) {
      ++result.malformed_lines;
      continue;
    }
    const auto id = parse_double(fields[0]);
    const auto t = parse_double(fields[1]);
    if (!id || !t || *id < 0.0 || *id != static_cast<double>(static_cast<SensorId>(*id))) {
      ++result.malformed_lines;
      continue;
    }
    SensorRecord rec;
    rec.sensor = static_cast<SensorId>(*id);
    rec.time = *t;
    rec.attrs.reserve(dims);
    bool ok = true;
    for (std::size_t i = 2; i < fields.size(); ++i) {
      const auto v = parse_double(fields[i]);
      if (!v) {
        ok = false;
        break;
      }
      rec.attrs.push_back(*v);
    }
    if (!ok) {
      ++result.malformed_lines;
      continue;
    }
    result.records.push_back(std::move(rec));
  }
  return result;
}

}  // namespace baseline

// --- fixture: one trace, written once in both formats ----------------------

struct TraceFiles {
  std::string csv_path;
  std::string bin_path;
  std::size_t records = 0;
  std::size_t csv_bytes = 0;
  std::size_t bin_bytes = 0;
};

/// 10 GDI sensors over 7 days with a stuck-at fault from day 2 (same shape
/// as the golden scenario, so the end-to-end runs exercise real detection).
const TraceFiles& trace_files() {
  static const TraceFiles files = [] {
    sim::GdiEnvironmentConfig ec;
    ec.duration_seconds = 7.0 * kSecondsPerDay;
    ec.seed = 20260806;
    const sim::GdiEnvironment env(ec);
    sim::GdiDeploymentConfig dc;
    dc.num_sensors = 10;
    dc.seed = 20260806;
    auto simulator = sim::make_gdi_deployment(env, dc);
    auto plan = std::make_shared<faults::InjectionPlan>();
    plan->add(6, std::make_unique<faults::StuckAtFault>(AttrVec{15.0, 1.0}),
              2.0 * kSecondsPerDay);
    simulator.set_transform(faults::make_transform(plan));
    const auto trace = simulator.run(ec.duration_seconds).trace;

    TraceFiles f;
    f.csv_path = std::filesystem::temp_directory_path() / "perf_io_trace.csv";
    f.bin_path = std::filesystem::temp_directory_path() / "perf_io_trace.snt";
    write_trace_file(f.csv_path, trace);
    // Binary holds the *parsed* CSV records so every path reads identical
    // doubles (CSV rounding happens exactly once).
    const auto parsed = read_trace_file(f.csv_path);
    write_trace_binary_file(f.bin_path, parsed.records);
    f.records = parsed.records.size();
    f.csv_bytes = std::filesystem::file_size(f.csv_path);
    f.bin_bytes = std::filesystem::file_size(f.bin_path);
    return f;
  }();
  return files;
}

void set_counters(benchmark::State& state, std::size_t records, std::size_t bytes) {
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * records));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * bytes));
  state.counters["records"] = static_cast<double>(records);
}

// --- read-path benches -----------------------------------------------------

void BM_ReadCsvGetlineBaseline(benchmark::State& state) {
  const auto& f = trace_files();
  std::size_t records = 0;
  for (auto _ : state) {
    std::ifstream in(f.csv_path);
    auto result = baseline::read_trace(in, 0);
    records = result.records.size();
    benchmark::DoNotOptimize(result);
  }
  set_counters(state, records, f.csv_bytes);
}

void BM_ReadCsvGetline(benchmark::State& state) {
  const auto& f = trace_files();
  std::size_t records = 0;
  for (auto _ : state) {
    std::ifstream in(f.csv_path);
    auto result = read_trace(in);
    records = result.records.size();
    benchmark::DoNotOptimize(result);
  }
  set_counters(state, records, f.csv_bytes);
}

void BM_ReadCsvZeroCopy(benchmark::State& state) {
  const auto& f = trace_files();
  std::size_t records = 0;
  std::vector<SensorRecord> batch;
  for (auto _ : state) {
    CsvTraceReader reader(f.csv_path);
    records = 0;
    while (reader.read_batch(batch, TraceReader::kDefaultBatch) > 0) {
      records += batch.size();
      benchmark::DoNotOptimize(batch.data());
    }
  }
  set_counters(state, records, f.csv_bytes);
}

void BM_ReadBinary(benchmark::State& state) {
  const auto& f = trace_files();
  std::size_t records = 0;
  std::vector<SensorRecord> batch;
  for (auto _ : state) {
    BinaryTraceReader reader(f.bin_path);
    records = 0;
    while (reader.read_batch(batch, TraceReader::kDefaultBatch) > 0) {
      records += batch.size();
      benchmark::DoNotOptimize(batch.data());
    }
  }
  set_counters(state, records, f.bin_bytes);
}

// --- end-to-end: file -> FleetReport ---------------------------------------

void run_end_to_end(benchmark::State& state, const std::string& path, std::size_t bytes) {
  const auto& f = trace_files();
  core::PipelineConfig cfg;
  sim::GdiEnvironmentConfig ec;
  const sim::GdiEnvironment env(ec);
  for (double t = 0.0; t < 2.0 * kSecondsPerDay; t += 2.0 * kSecondsPerHour) {
    cfg.initial_states.push_back(env.truth(t));
  }
  cfg.initial_states.resize(6);

  for (auto _ : state) {
    core::FleetMonitor fleet(6.0);
    fleet.add_region("r", cfg);
    const auto reader = open_trace_reader(path);
    fleet.ingest("r", *reader);
    fleet.finish();
    benchmark::DoNotOptimize(fleet.diagnose());
  }
  set_counters(state, f.records, bytes);
}

void BM_EndToEndFleetCsv(benchmark::State& state) {
  const auto& f = trace_files();
  run_end_to_end(state, f.csv_path, f.csv_bytes);
}

void BM_EndToEndFleetBinary(benchmark::State& state) {
  const auto& f = trace_files();
  run_end_to_end(state, f.bin_path, f.bin_bytes);
}

}  // namespace

BENCHMARK(BM_ReadCsvGetlineBaseline);
BENCHMARK(BM_ReadCsvGetline);
BENCHMARK(BM_ReadCsvZeroCopy);
BENCHMARK(BM_ReadBinary);
BENCHMARK(BM_EndToEndFleetCsv);
BENCHMARK(BM_EndToEndFleetBinary);

// metrics_main stamps the machine.* context fields (CPU budget, kernel
// level) and the library build type into the JSON, which is what lets
// tools/bench_compare.py gate BENCH_io.json in CI.
int main(int argc, char** argv) { return sentinel::bench_main::run(argc, argv); }
