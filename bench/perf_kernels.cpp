// P4 -- google-benchmark: the dispatched SIMD kernel layer in isolation.
//
// Unlike the other perf benches this one registers every benchmark once per
// *supported* kernel level (scalar always; sse2/avx2 when the CPU has them),
// bypassing the process-wide dispatch so one run compares the levels head to
// head: "BM_Dist2Block<avx2>/8/40" vs "BM_Dist2Block<scalar>/8/40". The
// shapes mirror the real call sites: dims 2-3 are the paper's attribute
// vectors (stride 4 after padding), dims 8 the autotune sweep's upper end;
// state counts 4-40 span the pipeline's model sizes and the HMM benches.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "metrics_main.h"
#include "util/kernels.h"
#include "util/rng.h"

namespace {

using namespace sentinel;

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, "perf-kernels");
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

void BM_Dist2Block(benchmark::State& state, const kern::Kernels& k) {
  const auto dims = static_cast<std::size_t>(state.range(0));
  const auto count = static_cast<std::size_t>(state.range(1));
  const std::size_t stride = kern::padded(dims);
  // Padded rows with +0.0 pad cells, exactly like ModelStateSet storage.
  std::vector<double> block(count * stride, 0.0);
  const auto fill = random_vec(count * dims, 1);
  for (std::size_t s = 0; s < count; ++s) {
    for (std::size_t d = 0; d < dims; ++d) block[s * stride + d] = fill[s * dims + d];
  }
  std::vector<double> query(stride, 0.0);
  const auto q = random_vec(dims, 2);
  for (std::size_t d = 0; d < dims; ++d) query[d] = q[d];
  std::vector<double> out(count, 0.0);
  for (auto _ : state) {
    k.dist2_block(block.data(), count, stride, query.data(), out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}

void BM_VecMat(benchmark::State& state, const kern::Kernels& k) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::size_t stride = kern::padded(m);
  const auto mat = random_vec(m * stride, 3);
  const auto x = random_vec(m, 4);
  std::vector<double> out(m, 0.0);
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0);
    k.vec_mat(x.data(), mat.data(), m, m, stride, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m * m));
}

void BM_MatVec(benchmark::State& state, const kern::Kernels& k) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::size_t stride = kern::padded(m);
  const auto mat = random_vec(m * stride, 5);
  const auto x = random_vec(m, 6);
  std::vector<double> out(m, 0.0);
  for (auto _ : state) {
    k.mat_vec(mat.data(), x.data(), m, m, stride, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m * m));
}

void BM_Normalize(benchmark::State& state, const kern::Kernels& k) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto src = random_vec(n, 7);
  std::vector<double> v(src);
  for (auto _ : state) {
    v = src;  // normalize mutates; restore so magnitudes stay sane
    benchmark::DoNotOptimize(k.normalize(v.data(), n));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_MulAxpy(benchmark::State& state, const kern::Kernels& k) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n, 8);
  const auto b = random_vec(n, 9);
  std::vector<double> y(n, 0.0);
  for (auto _ : state) {
    k.mul_axpy(y.data(), a.data(), b.data(), n, 1e-3);
    benchmark::DoNotOptimize(y.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_MaxPlus(benchmark::State& state, const kern::Kernels& k) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec(n, 10);
  const auto y = random_vec(n, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.max_plus(x.data(), y.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void register_for_level(kern::Level level) {
  if (!kern::level_supported(level)) return;
  const kern::Kernels& k = kern::table(level);
  const std::string tag = std::string("<") + kern::level_name(level) + ">";
  for (const long dims : {2L, 3L, 8L}) {
    for (const long count : {4L, 8L, 16L, 40L}) {
      benchmark::RegisterBenchmark(("BM_Dist2Block" + tag).c_str(),
                                   [&k](benchmark::State& s) { BM_Dist2Block(s, k); })
          ->Args({dims, count});
    }
  }
  for (const long m : {4L, 8L, 16L, 40L}) {
    benchmark::RegisterBenchmark(("BM_VecMat" + tag).c_str(),
                                 [&k](benchmark::State& s) { BM_VecMat(s, k); })
        ->Arg(m);
    benchmark::RegisterBenchmark(("BM_MatVec" + tag).c_str(),
                                 [&k](benchmark::State& s) { BM_MatVec(s, k); })
        ->Arg(m);
  }
  for (const long n : {8L, 40L, 256L}) {
    benchmark::RegisterBenchmark(("BM_Normalize" + tag).c_str(),
                                 [&k](benchmark::State& s) { BM_Normalize(s, k); })
        ->Arg(n);
    benchmark::RegisterBenchmark(("BM_MulAxpy" + tag).c_str(),
                                 [&k](benchmark::State& s) { BM_MulAxpy(s, k); })
        ->Arg(n);
    benchmark::RegisterBenchmark(("BM_MaxPlus" + tag).c_str(),
                                 [&k](benchmark::State& s) { BM_MaxPlus(s, k); })
        ->Arg(n);
  }
}

}  // namespace

// metrics_main stamps the machine.* context fields and the library build
// type (this binary's, not libbenchmark's) into the JSON, which is what
// lets tools/bench_compare.py gate BENCH_kernels.json.
int main(int argc, char** argv) {
  for (const kern::Level level : {kern::Level::scalar, kern::Level::sse2, kern::Level::avx2}) {
    register_for_level(level);
  }
  return sentinel::bench_main::run(argc, argv);
}
