// Fig. 9 + Tables 2 & 3 reproduction: the HMMs M_CO and M_CE learned for a
// stuck-at faulty sensor. The paper's sensor 6 ends up stuck at state
// (15, 1); we inject a StuckAtFault with that very value from day 2 onward.
//
// Expected shape (paper section 4.1):
//   - B^CE has a single column of approximately all ones (the stuck state),
//     other columns approximately null;
//   - the classifier reports a Stuck-at error for the sensor.
// On B^CO: the paper reports approximate orthogonality (cross products
// < 0.1, self > 0.8) with visible leakage (its Table 2 rows carry 0.11-0.17
// off-diagonal). The stuck humidity (~1 against 56..96) biases the network
// mean by up to (94-1)/K ~ 9 humidity points, so with our cluster spacing
// some windows map to the adjacent observable state; the classifier treats
// that distortion as what it provably is -- single-sensor bias (no
// coordinated coalition) -- and defers to B^CE, where the stuck signature is
// unambiguous. See DESIGN.md "Implementation decisions".

#include <cstdio>
#include <iostream>

#include "common/scenario.h"
#include "faults/fault_models.h"

int main() {
  using namespace sentinel;

  const bench::ScenarioConfig sc;
  const AttrVec stuck{15.0, 1.0};  // the paper's stuck state

  const bench::ScenarioResult r =
      bench::run_scenario({}, sc, [&](faults::InjectionPlan& plan, const sim::Environment&) {
        plan.add(6, std::make_unique<faults::StuckAtFault>(stuck),
                 /*start_time=*/2.0 * kSecondsPerDay);
      });
  const auto& p = *r.pipeline;
  const auto lookup = p.centroid_lookup();

  std::printf("# Fig. 9 + Tables 2, 3 -- HMMs for stuck-at faulty sensor 6 (stuck at (15,1))\n\n");

  std::cout << "A (M_CO state transitions, significant states only shown in full table):\n"
            << p.m_co().transition_matrix().to_string(3) << '\n';

  bench::print_emission(std::cout, p.m_co(), lookup, "Table 2 analogue -- B^CO:");
  std::cout << '\n';

  if (const auto* ce = p.m_ce(6)) {
    bench::print_emission(std::cout, *ce, lookup,
                          "Table 3 analogue -- B^CE for sensor 6 (_|_ = agrees with majority):");
  } else {
    std::cout << "no error/attack track was opened for sensor 6 (unexpected)\n";
  }

  const auto report = p.diagnose();
  std::printf("\nclassification:\n%s", core::to_string(report).c_str());

  const auto co = core::filter_emission(p.m_co(), p.significant_states(), false,
                                        r.pipeline_config.classifier);
  const auto orth = core::orthogonality(co, r.pipeline_config.classifier);
  std::printf("\nB^CO orthogonality (cosine): max row cross %.3f, max col cross %.3f, "
              "min row self %.3f\n",
              orth.max_row_cross, orth.max_col_cross, orth.min_row_self);
  std::printf("(distortion present but attributed to single-sensor bias -- no coalition --\n");
  std::printf(" so classification went through B^CE, as the verdict above shows)\n");
  return 0;
}
