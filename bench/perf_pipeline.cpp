// P1 -- google-benchmark: collector-node pipeline throughput. The paper's
// procedure must run on a base station / cluster head, so per-window cost
// matters; this bench measures it against network size and model-state
// count.
//
// Besides time, the window benches report `allocs_per_window`: heap
// allocations per processed window in steady state, counted by the global
// operator new override below. A warm-up pass over the full trace runs
// before counting, so one-time growth (scratch capacity, matrix capacity,
// state spawns) is excluded and the counter reflects the steady-state loop.
// See docs/PERFORMANCE.md for how to read the numbers.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/scenario.h"
#include "metrics_main.h"
#include "trace/windower.h"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

// Count every heap allocation in the process. Deliberately minimal: no
// tracking of frees or sizes -- the bench only needs "how many times did the
// hot loop hit the allocator".
//
// GCC reasons about allocator pairing from the *builtin* semantics of
// operator new and flags the free() in the delete overrides as mismatched;
// with these overrides the pairing is malloc/free by construction, so the
// warning is a false positive here (and would break the -Werror CI job).
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace sentinel;

std::vector<ObservationSet> make_windows(std::size_t sensors, double days,
                                         std::uint64_t seed) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = days * kSecondsPerDay;
  ec.seed = seed;
  const sim::GdiEnvironment env(ec);
  sim::GdiDeploymentConfig dc;
  dc.num_sensors = sensors;
  dc.seed = seed;
  auto simulator = sim::make_gdi_deployment(env, dc);
  auto result = simulator.run(ec.duration_seconds);
  return window_trace(std::move(result.trace), 3600.0);
}

core::PipelineConfig config_for(std::size_t states, std::uint64_t seed) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 7.0 * kSecondsPerDay;
  ec.seed = seed;
  const sim::GdiEnvironment env(ec);
  bench::ScenarioConfig sc;
  sc.initial_states = states;
  sc.seed = seed;
  return bench::make_pipeline_config(env, sc);
}

/// Replay the full window set through `p` once, counting processed windows.
std::size_t replay(core::DetectionPipeline& p, const std::vector<ObservationSet>& windows) {
  std::size_t n = 0;
  for (const auto& w : windows) {
    if (!w.empty()) {
      p.process_window(w);
      ++n;
    }
  }
  return n;
}

void run_window_bench(benchmark::State& state, const core::PipelineConfig& cfg,
                      const std::vector<ObservationSet>& windows) {
  std::uint64_t hot_allocs = 0;
  std::size_t hot_windows = 0;
  for (auto _ : state) {
    core::DetectionPipeline p(cfg);
    // Warm-up pass: spawn states, grow matrices and scratch to steady state.
    replay(p, windows);
    // Counted pass: the same windows again on the now-warm pipeline.
    const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    hot_windows += replay(p, windows);
    hot_allocs += g_alloc_count.load(std::memory_order_relaxed) - before;
    benchmark::DoNotOptimize(p.windows_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 2 * windows.size()));
  state.counters["allocs_per_window"] = benchmark::Counter(
      hot_windows == 0 ? 0.0
                       : static_cast<double>(hot_allocs) / static_cast<double>(hot_windows));
  // Raw sensor records ingested per second (both the warm-up and counted
  // replay touch every record), the unit fleet capacity planning uses.
  std::size_t records = 0;
  for (const auto& w : windows) records += w.raw.size();
  state.counters["records_per_second"] =
      benchmark::Counter(static_cast<double>(state.iterations() * 2 * records),
                         benchmark::Counter::kIsRate);
}

void BM_PipelineWindow(benchmark::State& state) {
  const auto sensors = static_cast<std::size_t>(state.range(0));
  const auto windows = make_windows(sensors, 7.0, 42);
  const auto cfg = config_for(6, 42);
  run_window_bench(state, cfg, windows);
}

void BM_PipelineWindowNoHistory(benchmark::State& state) {
  const auto sensors = static_cast<std::size_t>(state.range(0));
  const auto windows = make_windows(sensors, 7.0, 42);
  auto cfg = config_for(6, 42);
  cfg.record_history = false;
  run_window_bench(state, cfg, windows);
}

void BM_PipelineWindowStageTimers(benchmark::State& state) {
  // Same workload as BM_PipelineWindow with the per-stage wall-clock
  // histograms enabled: the delta against the plain rows is the full cost of
  // the observability layer when switched on (two clock reads per stage).
  const auto sensors = static_cast<std::size_t>(state.range(0));
  const auto windows = make_windows(sensors, 7.0, 42);
  auto cfg = config_for(6, 42);
  cfg.stage_timers = true;
  run_window_bench(state, cfg, windows);
}

void BM_PipelineStates(benchmark::State& state) {
  const auto states_n = static_cast<std::size_t>(state.range(0));
  const auto windows = make_windows(10, 7.0, 42);
  const auto cfg = config_for(states_n, 42);
  run_window_bench(state, cfg, windows);
}

void BM_Diagnose(benchmark::State& state) {
  const auto windows = make_windows(10, 7.0, 42);
  const auto cfg = config_for(6, 42);
  core::DetectionPipeline p(cfg);
  replay(p, windows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.diagnose());
  }
}

void BM_DiagnoseCold(benchmark::State& state) {
  // Re-process one window per iteration so every diagnose() starts with the
  // memoized inputs invalidated -- the uncached cost diagnose_sensors() used
  // to pay per tracked sensor.
  const auto windows = make_windows(10, 7.0, 42);
  const auto cfg = config_for(6, 42);
  core::DetectionPipeline p(cfg);
  replay(p, windows);
  std::size_t i = 0;
  for (auto _ : state) {
    while (windows[i % windows.size()].empty()) ++i;
    p.process_window(windows[i % windows.size()]);
    ++i;
    benchmark::DoNotOptimize(p.diagnose());
  }
}

}  // namespace

BENCHMARK(BM_PipelineWindow)->Arg(5)->Arg(10)->Arg(20)->Arg(50)->Arg(100);
BENCHMARK(BM_PipelineWindowNoHistory)->Arg(10)->Arg(100);
BENCHMARK(BM_PipelineWindowStageTimers)->Arg(10)->Arg(100);
BENCHMARK(BM_PipelineStates)->Arg(4)->Arg(6)->Arg(8)->Arg(12);
BENCHMARK(BM_Diagnose);
BENCHMARK(BM_DiagnoseCold);

int main(int argc, char** argv) { return sentinel::bench_main::run(argc, argv); }
