// P1 -- google-benchmark: collector-node pipeline throughput. The paper's
// procedure must run on a base station / cluster head, so per-window cost
// matters; this bench measures it against network size and model-state
// count.

#include <benchmark/benchmark.h>

#include "common/scenario.h"
#include "trace/windower.h"

namespace {

using namespace sentinel;

std::vector<ObservationSet> make_windows(std::size_t sensors, double days,
                                         std::uint64_t seed) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = days * kSecondsPerDay;
  ec.seed = seed;
  const sim::GdiEnvironment env(ec);
  sim::GdiDeploymentConfig dc;
  dc.num_sensors = sensors;
  dc.seed = seed;
  auto simulator = sim::make_gdi_deployment(env, dc);
  auto result = simulator.run(ec.duration_seconds);
  return window_trace(std::move(result.trace), 3600.0);
}

core::PipelineConfig config_for(std::size_t states, std::uint64_t seed) {
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = 7.0 * kSecondsPerDay;
  ec.seed = seed;
  const sim::GdiEnvironment env(ec);
  bench::ScenarioConfig sc;
  sc.initial_states = states;
  sc.seed = seed;
  return bench::make_pipeline_config(env, sc);
}

void BM_PipelineWindow(benchmark::State& state) {
  const auto sensors = static_cast<std::size_t>(state.range(0));
  const auto windows = make_windows(sensors, 7.0, 42);
  const auto cfg = config_for(6, 42);

  for (auto _ : state) {
    core::DetectionPipeline p(cfg);
    for (const auto& w : windows) {
      if (!w.empty()) p.process_window(w);
    }
    benchmark::DoNotOptimize(p.windows_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * windows.size()));
}

void BM_PipelineStates(benchmark::State& state) {
  const auto states_n = static_cast<std::size_t>(state.range(0));
  const auto windows = make_windows(10, 7.0, 42);
  const auto cfg = config_for(states_n, 42);

  for (auto _ : state) {
    core::DetectionPipeline p(cfg);
    for (const auto& w : windows) {
      if (!w.empty()) p.process_window(w);
    }
    benchmark::DoNotOptimize(p.windows_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * windows.size()));
}

void BM_Diagnose(benchmark::State& state) {
  const auto windows = make_windows(10, 7.0, 42);
  const auto cfg = config_for(6, 42);
  core::DetectionPipeline p(cfg);
  for (const auto& w : windows) {
    if (!w.empty()) p.process_window(w);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.diagnose());
  }
}

}  // namespace

BENCHMARK(BM_PipelineWindow)->Arg(5)->Arg(10)->Arg(20)->Arg(50)->Arg(100);
BENCHMARK(BM_PipelineStates)->Arg(4)->Arg(6)->Arg(8)->Arg(12);
BENCHMARK(BM_Diagnose);
BENCHMARK_MAIN();
