// P3 -- google-benchmark: fleet tier throughput. Regions are independent
// until the cross-region structural vote, so ingest + finish + diagnose
// should scale with FleetConfig::threads; this bench sweeps regions x
// threads over identical per-region traces. threads = 1 is the serial
// reference the parallel rows are measured against (the reports themselves
// are bit-identical by construction; fleet_parallel_test proves it).

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <string>
#include <vector>

#include "common/scenario.h"
#include "core/fleet.h"
#include "metrics_main.h"
#include "sim/simulator.h"
#include "util/thread_pool.h"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

// Count every heap allocation in the process (same minimal override as
// perf_pipeline): the ingest sweeps report allocs_per_record, and the
// steady-state bench below asserts the fused path stays off the allocator.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace sentinel;

constexpr std::size_t kMaxRegions = 16;
constexpr double kDays = 4.0;
constexpr std::size_t kSensors = 8;

struct FleetWorkload {
  std::vector<std::vector<SensorRecord>> traces;  // one per region
  core::PipelineConfig pipeline_config;
  std::size_t total_records = 0;
};

/// Per-region traces of the same environment under different noise/loss
/// seeds (the honest multi-region deployment), generated once per process.
const FleetWorkload& workload() {
  static const FleetWorkload w = [] {
    FleetWorkload out;
    sim::GdiEnvironmentConfig ec;
    ec.duration_seconds = kDays * kSecondsPerDay;
    ec.seed = 42;
    const sim::GdiEnvironment env(ec);

    bench::ScenarioConfig sc;
    sc.duration_days = kDays;
    sc.num_sensors = kSensors;
    sc.seed = 42;
    out.pipeline_config = bench::make_pipeline_config(env, sc);
    out.pipeline_config.window_seconds = kSecondsPerHour;

    for (std::size_t r = 0; r < kMaxRegions; ++r) {
      sim::GdiDeploymentConfig dc;
      dc.num_sensors = kSensors;
      dc.seed = 1000 + r;
      auto simulator = sim::make_gdi_deployment(env, dc);
      auto result = simulator.run(ec.duration_seconds, util::ThreadPool::shared());
      out.total_records += result.trace.size();
      out.traces.push_back(std::move(result.trace));
    }
    return out;
  }();
  return w;
}

void BM_FleetIngestDiagnose(benchmark::State& state) {
  const auto regions = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const FleetWorkload& w = workload();

  std::vector<std::string> names;
  std::size_t records_per_iter = 0;
  for (std::size_t r = 0; r < regions; ++r) {
    names.push_back("region-" + std::to_string(r));
    records_per_iter += w.traces[r].size();
  }

  // Cluster heads upload in bursts; round-robin the bursts across regions so
  // every shard's queue stays busy and ingestion overlaps.
  constexpr std::size_t kBurst = 1024;

  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    core::FleetConfig fc;
    fc.threads = threads;
    core::FleetMonitor fleet(fc);
    for (std::size_t r = 0; r < regions; ++r) {
      fleet.add_region(names[r], w.pipeline_config);
    }
    for (std::size_t off = 0;; off += kBurst) {
      bool any = false;
      for (std::size_t r = 0; r < regions; ++r) {
        if (off < w.traces[r].size()) {
          const std::size_t len = std::min(kBurst, w.traces[r].size() - off);
          fleet.add_records(names[r], {w.traces[r].data() + off, len});
          any = true;
        }
      }
      if (!any) break;
    }
    fleet.finish();
    const auto report = fleet.diagnose();
    benchmark::DoNotOptimize(report.overall);
    allocs += g_alloc_count.load(std::memory_order_relaxed) - before;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * records_per_iter));
  // Raw record throughput (the fleet capacity-planning unit) and whole-run
  // allocator pressure. allocs_per_record here covers the full lifecycle --
  // fleet construction, cold-start growth, finish, diagnose -- so it is an
  // upper bound; BM_FleetIngestSteadyState isolates the steady-state ingest
  // loop and asserts it stays allocation-free.
  state.counters["records_per_second"] =
      benchmark::Counter(static_cast<double>(state.iterations() * records_per_iter),
                         benchmark::Counter::kIsRate);
  state.counters["allocs_per_record"] = benchmark::Counter(
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(allocs) /
                static_cast<double>(state.iterations() * records_per_iter));
}

/// Steady-state fused ingest: one serial region, the decode -> window ->
/// screen-cache data plane only (no finish/diagnose in the timed loop). A
/// warm-up pass over the full trace grows every recycled buffer (windower
/// slots, gather gathers, pipeline scratch, alarm rows); the counted pass
/// replays the identical trace time-shifted by a whole number of windows, so
/// every record takes the same path through warm state. The fused path's
/// contract -- zero allocations per record at steady state -- is asserted
/// in-bench (a tiny epsilon absorbs the amortized history-arena slabs and
/// alarm-edge track churn, which are per-window, not per-record).
void BM_FleetIngestSteadyState(benchmark::State& state) {
  const FleetWorkload& w = workload();
  const std::vector<SensorRecord>& trace = w.traces[0];
  constexpr std::size_t kBurst = 1024;

  // Shift pass 2 by the trace duration rounded up to a whole window so the
  // replayed records open fresh windows instead of arriving late.
  const double window = w.pipeline_config.window_seconds;
  double t_max = 0.0;
  for (const auto& rec : trace) t_max = std::max(t_max, rec.time);
  const double shift = (std::floor(t_max / window) + 1.0) * window;
  std::vector<SensorRecord> shifted = trace;
  for (auto& rec : shifted) rec.time += shift;

  std::uint64_t hot_allocs = 0;
  std::uint64_t hot_records = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::FleetConfig fc;
    fc.threads = 1;
    core::FleetMonitor fleet(fc);
    fleet.add_region("r", w.pipeline_config);
    for (std::size_t off = 0; off < trace.size(); off += kBurst) {
      const std::size_t len = std::min(kBurst, trace.size() - off);
      fleet.add_records("r", {trace.data() + off, len});
    }
    state.ResumeTiming();
    const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (std::size_t off = 0; off < shifted.size(); off += kBurst) {
      const std::size_t len = std::min(kBurst, shifted.size() - off);
      fleet.add_records("r", {shifted.data() + off, len});
    }
    hot_allocs += g_alloc_count.load(std::memory_order_relaxed) - before;
    hot_records += shifted.size();
    benchmark::DoNotOptimize(fleet.region("r").windows_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(hot_records));
  const double allocs_per_record =
      hot_records == 0 ? 0.0
                       : static_cast<double>(hot_allocs) / static_cast<double>(hot_records);
  state.counters["records_per_second"] = benchmark::Counter(
      static_cast<double>(hot_records), benchmark::Counter::kIsRate);
  state.counters["allocs_per_record"] = benchmark::Counter(allocs_per_record);
  if (allocs_per_record > 0.01) {
    state.SkipWithError("fused ingest path allocated at steady state");
  }
}

/// Crash-consistent checkpointing tax (docs/RELIABILITY.md): the same
/// 2-region serial ingest with the store committing every N records.
/// every = 0 is the no-store baseline; the other rows snapshot the region
/// on the producer thread and run the fsync/rename commit protocol on the
/// committer thread each time the cadence fires. The traces are long
/// enough (~70 days x 16 sensors, ~290k records per region) that the
/// default cadence (FleetConfig::checkpoint_every_records = 262144)
/// actually fires, so the every:262144 row IS the default-configuration
/// overhead, while every:65536 shows a 4x-more-aggressive cadence.
const FleetWorkload& checkpoint_workload() {
  static const FleetWorkload w = [] {
    FleetWorkload out;
    constexpr std::size_t kCkptSensors = 16;
    sim::GdiEnvironmentConfig ec;
    ec.duration_seconds = 70.0 * kSecondsPerDay;
    ec.seed = 42;
    const sim::GdiEnvironment env(ec);

    bench::ScenarioConfig sc;
    sc.duration_days = 70.0;
    sc.num_sensors = kCkptSensors;
    sc.seed = 42;
    out.pipeline_config = bench::make_pipeline_config(env, sc);
    out.pipeline_config.window_seconds = kSecondsPerHour;

    for (std::size_t r = 0; r < 2; ++r) {
      sim::GdiDeploymentConfig dc;
      dc.num_sensors = kCkptSensors;
      dc.seed = 2000 + r;
      auto simulator = sim::make_gdi_deployment(env, dc);
      auto result = simulator.run(ec.duration_seconds, util::ThreadPool::shared());
      out.total_records += result.trace.size();
      out.traces.push_back(std::move(result.trace));
    }
    return out;
  }();
  return w;
}

void BM_FleetCheckpointOverhead(benchmark::State& state) {
  const auto every = static_cast<std::size_t>(state.range(0));
  const FleetWorkload& w = checkpoint_workload();
  const std::size_t regions = w.traces.size();
  constexpr std::size_t kBurst = 1024;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("perf_fleet_ckpt_" + std::to_string(static_cast<long>(::getpid()))))
          .string();

  std::vector<std::string> names;
  for (std::size_t r = 0; r < regions; ++r) {
    names.push_back("region-" + std::to_string(r));
  }

  for (auto _ : state) {
    // The timed region is the streaming ingest path itself (ingest + finish
    // + diagnose): store setup and the shutdown drain -- fleet destruction
    // blocks until the committer thread has pushed the final queued
    // snapshots to disk -- are deployment lifecycle, not per-record cost.
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    core::FleetConfig fc;
    fc.threads = 1;
    if (every > 0) {
      fc.checkpoint_dir = dir;
      fc.checkpoint_every_records = every;
    }
    auto fleet = std::make_unique<core::FleetMonitor>(fc);
    for (std::size_t r = 0; r < regions; ++r) {
      fleet->add_region(names[r], w.pipeline_config);
    }
    state.ResumeTiming();
    for (std::size_t off = 0;; off += kBurst) {
      bool any = false;
      for (std::size_t r = 0; r < regions; ++r) {
        if (off < w.traces[r].size()) {
          const std::size_t len = std::min(kBurst, w.traces[r].size() - off);
          fleet->add_records(names[r], {w.traces[r].data() + off, len});
          any = true;
        }
      }
      if (!any) break;
    }
    fleet->finish();
    const auto report = fleet->diagnose();
    benchmark::DoNotOptimize(report.overall);
    state.PauseTiming();
    fleet.reset();  // shutdown: drain + join the committer, untimed
    state.ResumeTiming();
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * w.total_records));
}

}  // namespace

BENCHMARK(BM_FleetIngestDiagnose)
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({8, 8})
    ->Args({16, 1})
    ->Args({16, 4})
    ->ArgNames({"regions", "threads"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_FleetIngestSteadyState)->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK(BM_FleetCheckpointOverhead)
    ->Arg(0)
    ->Arg(262144)
    ->Arg(65536)
    ->ArgName("every")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

int main(int argc, char** argv) { return sentinel::bench_main::run(argc, argv); }
