// Ablation A3: learning factors alpha (model-state EMA), beta/gamma (HMM
// updates). The paper fixes alpha = 0.10, beta = gamma = 0.90 (Table 1)
// without sensitivity analysis; this bench sweeps them on the calibration
// scenario and reports the classification outcome.
//
// Expected shape: alpha too large makes centroids chase faulty data (the
// correct and error states smear together); beta/gamma too small make A and
// B remember stale pre-fault structure and slow the emission signature.

#include <cstdio>

#include "common/scenario.h"

int main() {
  using namespace sentinel;

  std::printf("# A3 -- learning-factor sweep (calibration fault on sensor 6, 14-day runs)\n\n");

  std::printf("alpha sweep (beta = gamma = 0.90):\n");
  std::printf("%8s %10s %14s %14s\n", "alpha", "detected", "classified", "model_states");
  for (const double alpha : {0.02, 0.05, 0.10, 0.30, 0.60, 0.90}) {
    bench::ScenarioConfig sc;
    sc.duration_days = 14.0;
    sc.alpha = alpha;
    const auto r = bench::run_scenario(
        {}, sc, bench::make_injection(bench::InjectionKind::kCalibration, sc.seed));
    const auto score = bench::score_report(r.pipeline->diagnose(),
                                           bench::InjectionKind::kCalibration);
    std::printf("%8.2f %10s %14s %14zu\n", alpha, score.detected ? "yes" : "no",
                core::to_string(score.kind).c_str(), r.pipeline->model_states().size());
  }

  std::printf("\nbeta = gamma sweep (alpha = 0.10):\n");
  std::printf("%8s %10s %14s\n", "b=g", "detected", "classified");
  for (const double bg : {0.10, 0.30, 0.50, 0.70, 0.90, 0.99}) {
    bench::ScenarioConfig sc;
    sc.duration_days = 14.0;
    sc.beta = bg;
    sc.gamma = bg;
    const auto r = bench::run_scenario(
        {}, sc, bench::make_injection(bench::InjectionKind::kCalibration, sc.seed));
    const auto score = bench::score_report(r.pipeline->diagnose(),
                                           bench::InjectionKind::kCalibration);
    std::printf("%8.2f %10s %14s\n", bg, score.detected ? "yes" : "no",
                core::to_string(score.kind).c_str());
  }
  return 0;
}
