// Tables 4 & 5 reproduction: B^CO and B^CE for a calibration-faulty sensor.
// The paper's sensor 7 shows both matrices approximately orthogonal, a
// one-to-one correspondence between correct and error states, attribute
// *ratios* with low variance (avg ~(1.24, 1.16)) and attribute *differences*
// with high variance -- hence a Calibration verdict. We inject gains
// (0.80, 0.85), i.e. x_c / x_e = (1.25, 1.18), matching the paper's shape.

#include <cstdio>
#include <iostream>

#include "common/scenario.h"
#include "faults/fault_models.h"
#include "util/stats.h"

int main() {
  using namespace sentinel;

  const bench::ScenarioConfig sc;
  const AttrVec gains{0.70, 0.80};

  const bench::ScenarioResult r =
      bench::run_scenario({}, sc, [&](faults::InjectionPlan& plan, const sim::Environment&) {
        plan.add(7, std::make_unique<faults::CalibrationFault>(gains),
                 /*start_time=*/2.0 * kSecondsPerDay);
      });
  const auto& p = *r.pipeline;
  const auto lookup = p.centroid_lookup();

  std::printf("# Tables 4, 5 -- calibration-faulty sensor 7, injected gains (0.70, 0.80)\n\n");
  bench::print_emission(std::cout, p.m_co(), lookup, "Table 4 analogue -- B^CO:");
  std::cout << '\n';

  const auto* ce = p.m_ce(7);
  if (ce == nullptr) {
    std::cout << "no track opened for sensor 7 (unexpected)\n";
    return 1;
  }
  bench::print_emission(std::cout, *ce, lookup, "Table 5 analogue -- B^CE for sensor 7:");

  // The paper's ratio/difference statistics across associated state pairs.
  const auto f = core::filter_emission(*ce, {}, /*drop_bottom=*/true,
                                       r.pipeline_config.classifier);
  RunningStats ratio_t, ratio_h, diff_t, diff_h;
  for (std::size_t row = 0; row < f.b.rows(); ++row) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < f.b.cols(); ++c) {
      if (f.b(row, c) > f.b(row, best)) best = c;
    }
    const auto cc = lookup(f.hidden[row]);
    const auto ec = lookup(f.symbols[best]);
    if (!cc || !ec) continue;
    if (std::abs((*ec)[0]) > 1e-9) ratio_t.add((*cc)[0] / (*ec)[0]);
    if (std::abs((*ec)[1]) > 1e-9) ratio_h.add((*cc)[1] / (*ec)[1]);
    diff_t.add((*cc)[0] - (*ec)[0]);
    diff_h.add((*cc)[1] - (*ec)[1]);
  }
  std::printf("\nratios x_c/x_e:      avg (%.2f, %.2f)  var (%.4f, %.4f)   [paper: (1.24,1.16), (0.006,0.007)]\n",
              ratio_t.mean(), ratio_h.mean(), ratio_t.variance(), ratio_h.variance());
  std::printf("differences x_c-x_e: avg (%.1f, %.1f)    var (%.2f, %.2f)       [paper: (5,10), (0,8) -- high]\n",
              diff_t.mean(), diff_h.mean(), diff_t.variance(), diff_h.variance());

  std::printf("\nclassification:\n%s", core::to_string(p.diagnose()).c_str());
  return 0;
}
