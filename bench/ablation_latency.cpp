// Extension bench A8: diagnosis latency per anomaly type.
//
// The paper shows end-of-month classifications; an operator also cares how
// long the evidence takes to accumulate. Processing windows incrementally,
// this bench records, per injected anomaly type:
//   - alarm latency: onset -> first filtered alarm on an injected sensor,
//   - diagnosis latency: onset -> first day whose diagnose() output matches
//     the injected ground truth and stays correct until the end of the run.
//
// Expected shape: alarms within hours (filter depth x window); errors are
// classified once a few (correct, error) state pairs accumulate (~1-3 days);
// state-gated attacks wait for the environment to revisit the victim state.

#include <cstdio>
#include <optional>

#include "common/scenario.h"
#include "trace/windower.h"

int main() {
  using namespace sentinel;
  const double onset = 2.0 * kSecondsPerDay;

  std::printf("# A8 -- time from fault/attack onset to alarm and to stable correct diagnosis\n");
  std::printf("%-14s %14s %20s\n", "injected", "alarm_latency_h", "diagnosis_latency_d");

  for (const auto kind : bench::all_injection_kinds()) {
    if (kind == bench::InjectionKind::kClean || kind == bench::InjectionKind::kBenign) continue;

    bench::ScenarioConfig sc;
    sc.duration_days = 14.0;
    const auto r = bench::run_scenario({}, sc, bench::make_injection(kind, sc.seed, onset));

    // Replay the same trace window by window, diagnosing at day boundaries.
    core::DetectionPipeline p(r.pipeline_config);
    const auto windows = window_trace(r.sim.trace, r.pipeline_config.window_seconds);
    const auto injected = std::set<SensorId>{6, 7, 8, 9};

    double alarm_latency = -1.0;
    double first_right_day = -1.0;  // -1 = not (or no longer) correct
    std::size_t windows_done = 0;
    for (const auto& w : windows) {
      if (!w.empty()) p.process_window(w);
      ++windows_done;
      if (!p.history().empty() && alarm_latency < 0.0) {
        const auto& h = p.history().back();
        for (const auto& [sensor, info] : h.sensors) {
          if (info.filtered_alarm && injected.count(sensor) && h.window_start >= onset) {
            alarm_latency = (h.window_start - onset) / kSecondsPerHour;
            break;
          }
        }
      }
      if (windows_done % 24 == 0 && w.window_end > onset) {
        const double day = w.window_end / kSecondsPerDay;
        const auto score = bench::score_report(p.diagnose(), kind);
        if (score.exact) {
          if (first_right_day < 0.0) first_right_day = day;
        } else {
          first_right_day = -1.0;  // must stay correct to the end
        }
      }
    }

    char alarm_buf[32], diag_buf[32];
    if (alarm_latency >= 0.0) {
      std::snprintf(alarm_buf, sizeof alarm_buf, "%.1f", alarm_latency);
    } else {
      std::snprintf(alarm_buf, sizeof alarm_buf, "n/a");
    }
    if (first_right_day >= 0.0) {
      std::snprintf(diag_buf, sizeof diag_buf, "%.1f",
                    first_right_day - onset / kSecondsPerDay);
    } else {
      std::snprintf(diag_buf, sizeof diag_buf, "never");
    }
    std::printf("%-14s %14s %20s\n", bench::to_string(kind), alarm_buf, diag_buf);
  }
  return 0;
}
