// Extension bench A9: the detectability boundary -- how blatant must an
// attack be before the methodology sees it?
//
// Two sweeps on the Dynamic Change attack (the subtlest type: one-to-one,
// B^CO stays orthogonal):
//  1. displacement sweep: the remapped observable moves progressively
//     farther from the victim state. Small displacements stay inside the
//     victim's own cluster (invisible by construction -- and harmless, since
//     the reported state attributes barely change); past the cluster scale
//     the attack becomes visible and classified.
//  2. coalition sweep: fewer attackers pull the mean proportionally less,
//     shrinking the effective displacement the same way.
//
// Expected shape: a sharp detectability threshold at roughly the model-state
// cluster scale (the spawn threshold), quantifying the intuition that the
// paper's method detects exactly those attacks that change the *state-level*
// view of the environment.

#include <cstdio>

#include "common/scenario.h"
#include "faults/attack_models.h"

namespace {

using namespace sentinel;

core::DiagnosisReport run_change(double dx, double dy, std::size_t attackers,
                                 std::uint64_t seed) {
  bench::ScenarioConfig sc;
  sc.duration_days = 14.0;
  sc.seed = seed;
  const double fraction = static_cast<double>(attackers) / 10.0;
  const auto inject = [&](faults::InjectionPlan& plan, const sim::Environment&) {
    for (std::size_t i = 0; i < attackers; ++i) {
      faults::ChangeAttackConfig ac;
      ac.victim = faults::StateRegion{{12.0, 94.0}, 8.0};
      ac.observed_as = {12.0 + dx, 94.0 + dy};
      ac.fraction = fraction;
      plan.add(static_cast<SensorId>(9 - i), std::make_unique<faults::DynamicChangeAttack>(ac),
               2.0 * kSecondsPerDay);
    }
  };
  return bench::run_scenario({}, sc, inject).pipeline->diagnose();
}

}  // namespace

int main() {
  using namespace sentinel;

  std::printf("# A9 -- stealth sweep: Dynamic Change attack detectability\n\n");
  std::printf("displacement sweep (4/10 attackers, victim (12,94) remapped by d*(1,-2)/sqrt5):\n");
  std::printf("%14s %10s %18s\n", "displacement", "verdict", "kind");
  for (const double d : {1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0}) {
    // Push along the line's perpendicular so the target is a fresh regime.
    const double dx = d * 2.0 / 2.2360679;
    const double dy = d * 1.0 / 2.2360679;
    const auto report = run_change(dx, dy, 4, 42);
    std::printf("%14.1f %10s %18s\n", d, core::to_string(report.network.verdict).c_str(),
                core::to_string(report.network.kind).c_str());
  }
  std::printf("(cluster scale: merge 6 / spawn 9 -- the visibility threshold)\n");

  std::printf("\ncoalition sweep (fixed 18-unit displacement):\n");
  std::printf("%14s %10s %18s\n", "attackers", "verdict", "kind");
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    const auto report = run_change(16.1, 8.05, n, 42);
    std::printf("%11zu/10 %10s %18s\n", n, core::to_string(report.network.verdict).c_str(),
                core::to_string(report.network.kind).c_str());
  }
  std::printf("(a lone attacker cannot steer the mean to the target: injections clamp\n");
  std::printf("and the residual bias is correctly treated as the error regime)\n");
  return 0;
}
