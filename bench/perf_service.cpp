// P3 -- google-benchmark: resident service loopback data plane
// (src/service). The serve daemon turns every batch entry point into a
// socket round trip, so the wire tax -- client-side SNTRB1 encode, loopback
// TCP, server-side frame decode -- sits on the ingest hot path. This bench
// measures:
//
//   BM_ServeStreamThroughput   records/s end to end: encode -> loopback ->
//                              decode -> fused columnar ingest, one tenant
//                              streaming the golden 7-day trace per
//                              iteration (fresh region each time so pipeline
//                              state never accumulates across iterations).
//   BM_ServeIngestAckLatency   p50/p99 of a small send + kFlush barrier:
//                              the time a tenant waits to learn its frame
//                              landed in the region (admission round trip).
//   BM_ServeHealthLatency      p50/p99 of a HEALTH request while a region
//                              is live: the control-plane floor.
//
// Latency percentiles are computed from per-iteration wall samples and
// exported as p50_us / p99_us counters next to the usual timings.
//
// Results are recorded in BENCH_service.json (see docs/PERFORMANCE.md);
// docs/SERVICE.md covers the protocol being exercised.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "metrics_main.h"
#include "service/client.h"
#include "service/server.h"
#include "sim/simulator.h"

namespace {

using namespace sentinel;

/// The golden scenario trace (same shape as perf_io's): 10 GDI sensors over
/// 7 days. Generated once; every iteration streams these records.
const std::vector<SensorRecord>& bench_trace() {
  static const std::vector<SensorRecord> trace = [] {
    sim::GdiEnvironmentConfig ec;
    ec.duration_seconds = 7.0 * kSecondsPerDay;
    ec.seed = 20260806;
    const sim::GdiEnvironment env(ec);
    sim::GdiDeploymentConfig dc;
    dc.num_sensors = 10;
    dc.seed = 20260806;
    return sim::make_gdi_deployment(env, dc).run(ec.duration_seconds).trace;
  }();
  return trace;
}

core::PipelineConfig region_config() {
  core::PipelineConfig cfg;
  sim::GdiEnvironmentConfig ec;
  const sim::GdiEnvironment env(ec);
  for (double t = 0.0; t < 2.0 * kSecondsPerDay; t += 2.0 * kSecondsPerHour) {
    cfg.initial_states.push_back(env.truth(t));
  }
  cfg.initial_states.resize(6);
  return cfg;
}

service::ServerConfig server_config() {
  service::ServerConfig sc;
  sc.region = region_config();
  return sc;
}

/// Region names must be unique across the whole process: google-benchmark
/// re-runs bench functions while estimating iteration counts, and a resident
/// fleet never forgets a tenant.
std::string next_region() {
  static std::atomic<std::uint64_t> id{0};
  return "bench" + std::to_string(id.fetch_add(1));
}

void set_latency_counters(benchmark::State& state, std::vector<double>& samples_us) {
  if (samples_us.empty()) return;
  const auto nth = [&](double q) {
    const auto k = static_cast<std::ptrdiff_t>(q * static_cast<double>(samples_us.size() - 1));
    std::nth_element(samples_us.begin(), samples_us.begin() + k, samples_us.end());
    return samples_us[static_cast<std::size_t>(k)];
  };
  state.counters["p50_us"] = nth(0.50);
  state.counters["p99_us"] = nth(0.99);
}

// --- throughput ------------------------------------------------------------

void BM_ServeStreamThroughput(benchmark::State& state) {
  const auto& trace = bench_trace();
  service::Server server(server_config());
  server.start();
  service::ClientConfig cc;
  cc.port = server.port();

  for (auto _ : state) {
    state.PauseTiming();  // connection + HELLO are per-tenant setup, not wire
    service::Client client(cc);
    if (!client.hello(next_region(), 2).is_ok()) {
      state.SkipWithError("hello failed");
      break;
    }
    state.ResumeTiming();
    if (!client.send({trace.data(), trace.size()}).is_ok() || !client.flush().is_ok()) {
      state.SkipWithError("stream failed");
      break;
    }
  }
  server.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * trace.size()));
  state.counters["records"] = static_cast<double>(trace.size());
}

// --- request latency -------------------------------------------------------

void BM_ServeIngestAckLatency(benchmark::State& state) {
  service::Server server(server_config());
  server.start();
  service::ClientConfig cc;
  cc.port = server.port();
  service::Client client(cc);
  if (!client.hello(next_region(), 2).is_ok()) {
    state.SkipWithError("hello failed");
    server.stop();
    return;
  }

  // A synthetic forward-moving feed: constant readings keep the pipeline's
  // per-frame work flat so the samples measure the barrier, not detection.
  constexpr std::size_t kFrame = 256;
  std::vector<SensorRecord> frame(kFrame);
  double clock = 0.0;
  std::vector<double> samples_us;
  samples_us.reserve(10000);

  for (auto _ : state) {
    for (std::size_t i = 0; i < kFrame; ++i) {
      frame[i] = SensorRecord{static_cast<SensorId>(i % 10), clock, AttrVec{20.0, 50.0}};
      clock += 1.0;
    }
    const auto t0 = std::chrono::steady_clock::now();
    if (!client.send({frame.data(), frame.size()}).is_ok() || !client.flush().is_ok()) {
      state.SkipWithError("send failed");
      break;
    }
    const auto t1 = std::chrono::steady_clock::now();
    samples_us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  server.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kFrame));
  set_latency_counters(state, samples_us);
}

void BM_ServeHealthLatency(benchmark::State& state) {
  const auto& trace = bench_trace();
  service::Server server(server_config());
  server.start();
  service::ClientConfig cc;
  cc.port = server.port();
  service::Client client(cc);
  if (!client.hello(next_region(), 2).is_ok() ||
      !client.send({trace.data(), trace.size() / 8}).is_ok()) {
    state.SkipWithError("setup failed");
    server.stop();
    return;
  }

  std::vector<double> samples_us;
  samples_us.reserve(10000);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto health = client.health_text();
    const auto t1 = std::chrono::steady_clock::now();
    if (!health.is_ok()) {
      state.SkipWithError("health failed");
      break;
    }
    benchmark::DoNotOptimize(health);
    samples_us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  server.stop();
  set_latency_counters(state, samples_us);
}

}  // namespace

// UseRealTime throughout: the server does its half of the work on its own
// threads, so client-side CPU time flatters every number -- wall clock is
// what a tenant actually experiences.
BENCHMARK(BM_ServeStreamThroughput)->UseRealTime();
BENCHMARK(BM_ServeIngestAckLatency)->UseRealTime();
BENCHMARK(BM_ServeHealthLatency)->UseRealTime();

// metrics_main stamps the machine.* context fields into the JSON so
// tools/bench_compare.py can gate BENCH_service.json in CI.
int main(int argc, char** argv) { return sentinel::bench_main::run(argc, argv); }
