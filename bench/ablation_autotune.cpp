// Extension bench A10: does the data-driven parameter suggestion
// (core/autotune.h) reproduce the hand-tuned accuracy?
//
// The paper assumes the operator tunes the clustering thresholds; this bench
// derives them from two clean lead-in days of each trace instead, then runs
// the full per-scenario classification sweep with the suggested
// configuration. Expected shape: accuracy comparable to the hand-tuned
// accuracy_matrix.

#include <cstdio>

#include "common/scenario.h"
#include "core/autotune.h"
#include "trace/filter.h"

int main() {
  using namespace sentinel;
  constexpr std::size_t kTrials = 3;

  std::printf("# A10 -- classification with auto-tuned parameters (%zu trials/scenario)\n",
              kTrials);
  std::printf("%-14s %9s %7s %14s %14s\n", "injected", "detected", "exact", "merge(sugg)",
              "spawn(sugg)");

  std::size_t total_detected = 0, total_exact = 0, total = 0;
  for (const auto kind : bench::all_injection_kinds()) {
    std::size_t detected = 0, exact = 0;
    double merge_sum = 0.0, spawn_sum = 0.0;
    for (std::size_t trial = 0; trial < kTrials; ++trial) {
      bench::ScenarioConfig sc;
      sc.duration_days = 14.0;
      sc.seed = 5000 + 31 * trial;

      // Simulate once through the ordinary harness, then REPLACE the
      // hand-tuned pipeline with one configured by autotune on the clean
      // lead-in (the injections start at day 2).
      const auto r = bench::run_scenario({}, sc, bench::make_injection(kind, sc.seed));
      const auto lead_in = select_time_range(r.sim.trace, 0.0, 2.0 * kSecondsPerDay);
      Rng rng(sc.seed, "autotune-bench");
      const auto tuned = core::suggest_configuration(lead_in, 3600.0, 6, rng);

      core::PipelineConfig cfg = r.pipeline_config;
      cfg.initial_states = tuned.initial_states;
      cfg.model_states = tuned.suggested;
      core::DetectionPipeline p(cfg);
      p.process_trace(r.sim.trace);

      const auto score = bench::score_report(p.diagnose(), kind);
      detected += score.detected;
      exact += score.exact;
      merge_sum += tuned.suggested.merge_threshold;
      spawn_sum += tuned.suggested.spawn_threshold;
    }
    total_detected += detected;
    total_exact += exact;
    total += kTrials;
    std::printf("%-14s %6zu/%zu %5zu/%zu %14.1f %14.1f\n", bench::to_string(kind), detected,
                kTrials, exact, kTrials, merge_sum / kTrials, spawn_sum / kTrials);
  }
  std::printf("\noverall: detected %zu/%zu, exact %zu/%zu (hand-tuned reference: 50/50, 46/50)\n",
              total_detected, total, total_exact, total);
  return 0;
}
