// Ablation A2: observation window size w.
//
// The paper argues w must be "large enough to create nonempty sets O_i yet
// small enough to accurately sample changes in Theta(t)" and picks 12
// samples (1 hour). This bench sweeps w and reports, for a stuck-at
// injection: detection latency (hours from fault onset to the sensor's
// filtered alarm), the healthy sensors' raw false-alarm rate, and whether
// classification still lands on stuck-at.
//
// Expected shape: tiny windows inflate false alarms (few readings per
// window, noisy majority); huge windows delay detection and blur diurnal
// transitions; w around the paper's choice balances both.

#include <cstdio>
#include <optional>

#include "common/scenario.h"

int main() {
  using namespace sentinel;
  const double fault_start = 3.0 * kSecondsPerDay;

  std::printf("# A2 -- window size sweep (stuck-at on sensor 6 at day 3, 14-day runs)\n");
  std::printf("%10s %14s %18s %14s %12s\n", "w_samples", "latency_h", "false_alarm_rate",
              "classified", "windows");

  for (const std::size_t w : {2u, 4u, 8u, 12u, 24u, 48u}) {
    bench::ScenarioConfig sc;
    sc.duration_days = 14.0;
    sc.window_samples = w;
    const auto r = bench::run_scenario(
        {}, sc, bench::make_injection(bench::InjectionKind::kStuckAt, sc.seed, fault_start));
    const auto& p = *r.pipeline;

    // Detection latency: first window where sensor 6's filtered alarm is on.
    std::optional<double> detect_time;
    std::size_t healthy_raw = 0, healthy_n = 0;
    for (const auto& hist : p.history()) {
      const auto it6 = hist.sensors.find(6);
      if (!detect_time && it6 != hist.sensors.end() && it6->second.filtered_alarm &&
          hist.window_start >= fault_start) {
        detect_time = hist.window_start - fault_start;
      }
      for (const auto& [id, info] : hist.sensors) {
        if (id == 6) continue;
        ++healthy_n;
        healthy_raw += info.raw_alarm;
      }
    }

    const auto report = p.diagnose();
    const auto score = bench::score_report(report, bench::InjectionKind::kStuckAt);
    std::printf("%10zu %14s %17.2f%% %14s %12zu\n", static_cast<std::size_t>(w),
                detect_time ? std::to_string(*detect_time / kSecondsPerHour).substr(0, 6).c_str()
                            : "miss",
                100.0 * static_cast<double>(healthy_raw) / static_cast<double>(healthy_n),
                core::to_string(score.kind).c_str(), p.windows_processed());
  }
  return 0;
}
