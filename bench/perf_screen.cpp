// P4 -- google-benchmark: screen-tier throughput. The tiered-detection
// claim is O(suspicious), not O(sensors): with screening on, a healthy
// sensor's per-window cost is one scalar residual push, and only escalated
// sensors take the model-state mapping + alarm-filter + HMM stages. This
// bench sweeps the suspicious fraction over an 8-region fleet of
// pre-aggregated (window-granular) feeds -- the cluster-head regime the
// tier is sized for -- and reports end-to-end fleet windows/s for
// screen_mode off vs screen at each fraction. The off rows are the cost the
// full path pays regardless of health; the screen rows should approach the
// fixed per-window cost as the suspicious fraction drops.
//
// Environment model: kRegimes resident regime states (the paper's M ~ 6,
// scaled up for a cluster head), cycled every
// kRegimePeriod windows, all seeded as initial states. Every healthy sensor
// tracks the active regime, so a regime switch moves sensor and window mean
// together and the scalar residual -- the screen's whole view -- is
// unchanged: screened sensors stay screened across switches. The full path,
// meanwhile, pays a distance scan over every resident state per sensor per
// window, which is exactly the cost the screens exist to gate.
//
// Fault model: a suspicious sensor carries a +/-12-per-attribute offset (a
// miscalibrated or steered bloc) in recurring episodes -- kEpisodeOn windows
// on, then off for the rest of kEpisodePeriod. The offsets are balanced
// (half the bloc +12, half -12), so the window mean -- and with it every
// healthy sensor's residual -- is unmoved by an episode boundary: healthy
// screens stay quiet. The faulty sensors themselves sit past the spawn
// threshold during episodes, spawn shadow states, and raw-alarm against the
// majority; between episodes their screens trip instead (the residual
// falls away from the contaminated baseline). Either way the hysteresis
// never sees deescalate_after consecutive clean windows, so the escalated
// set tracks the injected fraction -- while tracks close between episodes,
// keeping the per-sensor HMM cost (paid identically by both modes)
// proportional to the fault duty cycle rather than saturated.

// Besides time, the benches report `allocs_per_window`: heap allocations per
// window fed during the timed span, counted by the global operator new
// override below (the same accounting perf_pipeline uses). The warm-up
// windows run before counting, so one-time growth (state spawns, slab
// capacity, scratch vectors) is excluded. BM_ScreenedSteadyWindows pins the
// strongest claim: with a persistent fault bloc and a single regime --
// no track churn, no state spawns, no repacks after warm-up -- the batched
// per-sensor path must be allocation-free at steady state (0 allocs/window).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "metrics_main.h"
#include "screen/screen.h"
#include "trace/windower.h"
#include "util/rng.h"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

// Count every heap allocation in the process (see perf_pipeline.cpp for the
// rationale and the -Wmismatched-new-delete note).
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace sentinel;

constexpr std::size_t kRegions = 8;
constexpr std::size_t kSensors = 1024;     // per region (cluster-head scale)
constexpr std::size_t kWindows = 256;      // per region
constexpr std::size_t kAttrs = 8;
constexpr std::size_t kRegimes = 8;        // resident environment states
constexpr std::size_t kRegimePeriod = 64;  // windows between regime switches
constexpr std::size_t kWarmWindows = 64;   // untimed: screens warm up + hysteresis settles
constexpr double kFaultOffset = 12.0;      // per-attr suspicious-sensor offset
constexpr std::size_t kEpisodeOn = 6;      // fault-episode length, windows
constexpr std::size_t kEpisodePeriod = 28; // episode period; the 22-window gap
                                           // stays under deescalate_after (24)
constexpr double kWindowSeconds = kSecondsPerHour;

/// One region's pre-aggregated feed: kWindows hand-built ObservationSets
/// with rep arrays and cached means filled, exactly what a cluster head
/// that windows locally would upload (and what FleetMonitor::add_window
/// ingests without copies).
struct RegionFeed {
  std::vector<ObservationSet> windows;
};

struct ScreenWorkload {
  std::vector<RegionFeed> regions;          // one per region, per fraction
  core::PipelineConfig pipeline_config;     // screen.mode patched per run
};

/// Centroid of regime k: the base point plus k alternating-sign steps, so
/// adjacent regimes sit 16 apart in L2 (no merging at threshold 6, no
/// cross-mapping at spawn threshold 9).
AttrVec regime_centroid(std::size_t k) {
  const AttrVec base = {50.0, 25.0, 40.0, 60.0, 30.0, 45.0, 55.0, 35.0};
  const AttrVec swing = {8.0, -8.0, 8.0, -8.0, 8.0, -8.0, 8.0, -8.0};
  AttrVec c(kAttrs);
  for (std::size_t a = 0; a < kAttrs; ++a) {
    c[a] = base[a] + static_cast<double>(k) * swing[a];
  }
  return c;
}

/// Build the workload for one suspicious fraction (percent). Suspicious
/// sensors are the lowest ids; each tracks the active regime plus a
/// constant kFaultOffset per attribute (L2 distance 24 from its regime:
/// past the spawn threshold, so the fault bloc gets its own shadow state
/// and raw-alarms against the healthy majority every window).
ScreenWorkload make_workload(std::size_t suspicious_pct) {
  ScreenWorkload w;

  core::PipelineConfig pc;
  pc.window_seconds = kWindowSeconds;
  for (std::size_t k = 0; k < kRegimes; ++k) pc.initial_states.push_back(regime_centroid(k));
  pc.model_states.max_states = 24;  // regimes + shadow states for fault blocs
  pc.screen.chi2_threshold = 3.5;   // trade detection margin for fewer false
  pc.screen.runs_z_threshold = 3.5; // escalations (see docs/PERFORMANCE.md)
  pc.record_history = false;  // fleet-at-scale configuration
  w.pipeline_config = pc;

  const std::size_t suspicious = kSensors * suspicious_pct / 100;
  for (std::size_t r = 0; r < kRegions; ++r) {
    RegionFeed feed;
    feed.windows.reserve(kWindows);
    Rng rng(9000 + r, "perf-screen");
    for (std::size_t i = 1; i <= kWindows; ++i) {
      const AttrVec regime = regime_centroid(((i - 1) / kRegimePeriod) % kRegimes);
      ObservationSet os;
      os.window_index = i;
      os.window_start = kWindowSeconds * static_cast<double>(i - 1);
      os.window_end = kWindowSeconds * static_cast<double>(i);
      os.rep_sensors.reserve(kSensors);
      os.rep_points.reserve(kSensors);
      AttrVec mean(kAttrs, 0.0);
      // Build the rep arrays in their own pass so the per-point heap blocks
      // land back-to-back (the hot loops walk them sequentially every
      // window; interleaving them with map-node allocations would hand both
      // modes a cache miss per point and drown the compute being compared).
      const bool episode_on = ((i - 1) % kEpisodePeriod) < kEpisodeOn;
      for (std::size_t s = 0; s < kSensors; ++s) {
        double fault = 0.0;
        if (episode_on && s < suspicious) {
          fault = (s % 2 == 0) ? kFaultOffset : -kFaultOffset;
        }
        AttrVec p(kAttrs);
        for (std::size_t a = 0; a < kAttrs; ++a) {
          p[a] = regime[a] + rng.gaussian(0.0, 0.4) + fault;
        }
        for (std::size_t a = 0; a < kAttrs; ++a) mean[a] += p[a];
        os.rep_sensors.push_back(static_cast<SensorId>(s));
        os.rep_sums.push_back(vecn::scalar_sum(p));
        if (os.rep_total.empty()) os.rep_total.assign(kAttrs, 0.0);
        for (std::size_t a = 0; a < kAttrs; ++a) os.rep_total[a] += p[a];
        os.rep_points.push_back(std::move(p));
      }
      // per_sensor and raw stay empty: the head uploads representatives plus
      // the cached mean, not raw samples, and the pipeline's min-sensors
      // gate and the fleet's ingest weight count the rep arrays directly.
      for (auto& a : mean) a /= static_cast<double>(kSensors);
      os.cached_mean = std::move(mean);
      feed.windows.push_back(std::move(os));
    }
    w.regions.push_back(std::move(feed));
  }
  return w;
}

const ScreenWorkload& workload(std::size_t suspicious_pct) {
  // Single-entry cache: one fraction's feed is ~hundreds of MB at cluster-
  // head scale, so keep only the fraction being measured (off and screen
  // rows for the same fraction run back-to-back and share it).
  static std::size_t cached_pct = static_cast<std::size_t>(-1);
  static ScreenWorkload cache;
  if (cached_pct != suspicious_pct) {
    cache = make_workload(suspicious_pct);
    cached_pct = suspicious_pct;
  }
  return cache;
}

void BM_ScreenedFleetWindows(benchmark::State& state) {
  const auto suspicious_pct = static_cast<std::size_t>(state.range(0));
  const auto mode =
      state.range(1) == 0 ? screen::ScreenMode::kOff : screen::ScreenMode::kScreen;
  const ScreenWorkload& w = workload(suspicious_pct);

  std::vector<std::string> names;
  for (std::size_t r = 0; r < kRegions; ++r) names.push_back("region-" + std::to_string(r));

  std::size_t escalated = 0;
  std::uint64_t hot_allocs = 0;
  std::uint64_t hot_windows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::FleetConfig fc;
    fc.threads = 1;
    core::FleetMonitor fleet(fc);
    core::PipelineConfig pc = w.pipeline_config;
    pc.screen.mode = mode;
    for (std::size_t r = 0; r < kRegions; ++r) fleet.add_region(names[r], pc);
    // Warm untimed: every sensor starts escalated by design (the full path
    // owns a sensor until its screens have a baseline), so the opening
    // windows measure the transient, not the tier. Feed enough windows for
    // baselines to freeze and the de-escalation hysteresis to settle, then
    // time the steady state the fleet actually runs in.
    for (std::size_t i = 0; i < kWarmWindows; ++i) {
      for (std::size_t r = 0; r < kRegions; ++r) {
        fleet.add_window(names[r], w.regions[r].windows[i]);
      }
    }
    state.ResumeTiming();
    // Round-robin the window uploads across regions, one window per region
    // per turn -- the arrival order of a fleet of synchronized cluster heads.
    const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (std::size_t i = kWarmWindows; i < kWindows; ++i) {
      for (std::size_t r = 0; r < kRegions; ++r) {
        fleet.add_window(names[r], w.regions[r].windows[i]);
      }
    }
    hot_allocs += g_alloc_count.load(std::memory_order_relaxed) - before;
    hot_windows += kRegions * (kWindows - kWarmWindows);
    fleet.finish();
    const auto report = fleet.diagnose();
    benchmark::DoNotOptimize(report.overall);
    escalated = 0;
    for (const auto& [name, s] : report.screens) escalated += s.escalated;
  }
  state.counters["escalated"] = static_cast<double>(escalated);
  state.counters["allocs_per_window"] = benchmark::Counter(
      hot_windows == 0 ? 0.0
                       : static_cast<double>(hot_allocs) / static_cast<double>(hot_windows));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kRegions *
                                                    (kWindows - kWarmWindows)));
}

/// Steady-state variant: ONE resident regime and a persistent fault bloc.
/// After warm-up the tier reaches a fixed point -- the fault bloc's tracks
/// stay open (no churn), the regime never switches (no spawns, no screen
/// trips from healthy sensors), and the slab stops repacking -- so the
/// timed span isolates the batched per-sensor loop. Its allocs_per_window
/// counter is the bench-enforced claim that the batched path does not touch
/// the allocator at steady state.
ScreenWorkload make_steady_workload(std::size_t suspicious_pct) {
  ScreenWorkload w;

  core::PipelineConfig pc;
  pc.window_seconds = kWindowSeconds;
  pc.initial_states.push_back(regime_centroid(0));
  pc.model_states.max_states = 24;
  pc.screen.chi2_threshold = 3.5;
  pc.screen.runs_z_threshold = 3.5;
  pc.record_history = false;
  w.pipeline_config = pc;

  const std::size_t suspicious = kSensors * suspicious_pct / 100;
  const AttrVec regime = regime_centroid(0);
  for (std::size_t r = 0; r < kRegions; ++r) {
    RegionFeed feed;
    feed.windows.reserve(kWindows);
    Rng rng(9600 + r, "perf-screen-steady");
    for (std::size_t i = 1; i <= kWindows; ++i) {
      ObservationSet os;
      os.window_index = i;
      os.window_start = kWindowSeconds * static_cast<double>(i - 1);
      os.window_end = kWindowSeconds * static_cast<double>(i);
      os.rep_sensors.reserve(kSensors);
      os.rep_points.reserve(kSensors);
      AttrVec mean(kAttrs, 0.0);
      for (std::size_t s = 0; s < kSensors; ++s) {
        // Persistent, mean-balanced fault: the bloc raw-alarms every window,
        // so its tracks open once and never close.
        const double fault =
            s < suspicious ? ((s % 2 == 0) ? kFaultOffset : -kFaultOffset) : 0.0;
        AttrVec p(kAttrs);
        for (std::size_t a = 0; a < kAttrs; ++a) {
          p[a] = regime[a] + rng.gaussian(0.0, 0.4) + fault;
        }
        for (std::size_t a = 0; a < kAttrs; ++a) mean[a] += p[a];
        os.rep_sensors.push_back(static_cast<SensorId>(s));
        os.rep_sums.push_back(vecn::scalar_sum(p));
        if (os.rep_total.empty()) os.rep_total.assign(kAttrs, 0.0);
        for (std::size_t a = 0; a < kAttrs; ++a) os.rep_total[a] += p[a];
        os.rep_points.push_back(std::move(p));
      }
      for (auto& a : mean) a /= static_cast<double>(kSensors);
      os.cached_mean = std::move(mean);
      feed.windows.push_back(std::move(os));
    }
    w.regions.push_back(std::move(feed));
  }
  return w;
}

void BM_ScreenedSteadyWindows(benchmark::State& state) {
  const auto suspicious_pct = static_cast<std::size_t>(state.range(0));
  const auto mode =
      state.range(1) == 0 ? screen::ScreenMode::kOff : screen::ScreenMode::kScreen;
  // Own cache (same single-entry policy as workload()): the steady feed and
  // the episodic feed never share a fraction's buffers.
  static std::size_t cached_pct = static_cast<std::size_t>(-1);
  static ScreenWorkload cache;
  if (cached_pct != suspicious_pct) {
    cache = make_steady_workload(suspicious_pct);
    cached_pct = suspicious_pct;
  }
  const ScreenWorkload& w = cache;

  std::vector<std::string> names;
  for (std::size_t r = 0; r < kRegions; ++r) names.push_back("region-" + std::to_string(r));

  std::uint64_t hot_allocs = 0;
  std::uint64_t hot_windows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::FleetConfig fc;
    fc.threads = 1;
    auto fleet = std::make_unique<core::FleetMonitor>(fc);
    core::PipelineConfig pc = w.pipeline_config;
    pc.screen.mode = mode;
    for (std::size_t r = 0; r < kRegions; ++r) fleet->add_region(names[r], pc);
    for (std::size_t i = 0; i < kWarmWindows; ++i) {
      for (std::size_t r = 0; r < kRegions; ++r) {
        fleet->add_window(names[r], w.regions[r].windows[i]);
      }
    }
    state.ResumeTiming();
    const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (std::size_t i = kWarmWindows; i < kWindows; ++i) {
      for (std::size_t r = 0; r < kRegions; ++r) {
        fleet->add_window(names[r], w.regions[r].windows[i]);
      }
    }
    hot_allocs += g_alloc_count.load(std::memory_order_relaxed) - before;
    hot_windows += kRegions * (kWindows - kWarmWindows);
    state.PauseTiming();
    benchmark::DoNotOptimize(fleet->diagnose().overall);
    fleet.reset();
    state.ResumeTiming();
  }
  state.counters["allocs_per_window"] = benchmark::Counter(
      hot_windows == 0 ? 0.0
                       : static_cast<double>(hot_allocs) / static_cast<double>(hot_windows));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kRegions *
                                                    (kWindows - kWarmWindows)));
}

}  // namespace

BENCHMARK(BM_ScreenedFleetWindows)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({5, 0})
    ->Args({5, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({25, 0})
    ->Args({25, 1})
    ->Args({100, 0})
    ->Args({100, 1})
    ->ArgNames({"suspicious_pct", "screen"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_ScreenedSteadyWindows)
    ->Args({10, 0})
    ->Args({10, 1})
    ->ArgNames({"suspicious_pct", "screen"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

int main(int argc, char** argv) { return sentinel::bench_main::run(argc, argv); }
