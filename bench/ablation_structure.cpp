// Extension bench A7: the paper's first-order intuition, tested directly.
//
// Section 3.4: "attacks change the temporal behavior of the environment as
// sensed by the network, while errors do not. ... in case of errors the two
// models [M_C and M_O] have the same number of states and the same set of
// transitions, while they may have different attributes associated with a
// given state." The pipeline checks this through B^CO instead of comparing
// the Markov models; this bench builds both M_C and M_O for every injection
// scenario and compares their structure directly, validating the intuition
// the classifier rests on.
//
// Expected shape: clean/benign/error scenarios preserve the pruned M_C / M_O
// state set and transition support; creation adds observable states,
// deletion removes them, change relabels them.

#include <cstdio>

#include "common/scenario.h"

int main() {
  using namespace sentinel;

  std::printf("# A7 -- M_C vs M_O structural comparison per scenario (14-day runs)\n");
  std::printf("%-14s %10s %10s %16s %22s\n", "injected", "|M_C|", "|M_O|", "same_structure",
              "expected");

  for (const auto kind : bench::all_injection_kinds()) {
    bench::ScenarioConfig sc;
    sc.duration_days = 14.0;
    const auto r = bench::run_scenario({}, sc, bench::make_injection(kind, sc.seed));
    const auto& p = *r.pipeline;

    const double occ = r.pipeline_config.classifier.min_occupancy;
    const auto m_c = p.m_c().pruned(occ);
    const auto m_o = p.m_o().pruned(occ);
    const bool same = m_c.same_structure(m_o);

    const char* expected = "";
    switch (kind) {
      case bench::InjectionKind::kClean:
      case bench::InjectionKind::kBenign:
      case bench::InjectionKind::kStuckAt:
      case bench::InjectionKind::kCalibration:
      case bench::InjectionKind::kAdditive:
      case bench::InjectionKind::kRandomNoise:
        expected = "preserved (error)";
        break;
      case bench::InjectionKind::kCreation:
        expected = "changed (+state)";
        break;
      case bench::InjectionKind::kDeletion:
        expected = "changed (-state)";
        break;
      case bench::InjectionKind::kChange:
        expected = "changed (relabel)";
        break;
      case bench::InjectionKind::kMixed:
        expected = "changed (both)";
        break;
    }
    std::printf("%-14s %10zu %10zu %16s %22s\n", bench::to_string(kind), m_c.num_states(),
                m_o.num_states(), same ? "yes" : "no", expected);
  }

  std::printf("\npaper section 3.4: errors leave the temporal structure of the sensed\n");
  std::printf("environment intact; attacks are visible as structural change\n");
  return 0;
}
