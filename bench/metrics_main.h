// Shared bench main: BENCHMARK_MAIN() plus an observability tail. After the
// benchmarks run, the process-global metrics registry is dumped as a text
// block (so perf logs show queue depths, drops, and stage timers next to the
// timings) and, when `--metrics-json=PATH` was passed, written to PATH as
// JSON for CI artifacts. The flag is stripped before google-benchmark parses
// the remaining arguments.

#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/kernels.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace sentinel::bench_main {

inline int run(int argc, char** argv) {
  std::string metrics_path;
  std::vector<char*> pass;
  pass.reserve(static_cast<std::size_t>(argc) + 1);
  constexpr std::string_view kFlag = "--metrics-json=";
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(kFlag, 0) == 0) {
      metrics_path = std::string(arg.substr(kFlag.size()));
      continue;
    }
    pass.push_back(argv[i]);
  }
  pass.push_back(nullptr);  // argv contract: argv[argc] == nullptr
  int pargc = static_cast<int>(pass.size()) - 1;

  benchmark::Initialize(&pargc, pass.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, pass.data())) return 1;
  // Stamp the machine identity into the benchmark context so --benchmark_out
  // JSON (the committed BENCH_*.json baselines) records which machine the
  // numbers came from: tools/bench_compare.py refuses to diff files whose
  // machine.* fields disagree -- a throughput "regression" measured on a
  // different CPU budget or kernel dispatch level is noise, not signal.
  {
    const auto level = sentinel::kern::active_level();
    const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const std::size_t usable = sentinel::util::default_concurrency();
    benchmark::AddCustomContext("machine.hardware_threads", std::to_string(hw));
    benchmark::AddCustomContext("machine.usable_concurrency", std::to_string(usable));
    benchmark::AddCustomContext("machine.kernel_level", sentinel::kern::level_name(level));
    // google-benchmark stamps library_build_type from how LIBBENCHMARK was
    // compiled (distro packages are often debug builds); what gates whether
    // numbers are trustworthy is how THIS binary -- the code under test --
    // was compiled. Emit the key again with the app's build type: JSON
    // consumers keep the last duplicate key, so this override wins, and
    // bench_compare.py refuses any JSON that doesn't say "release".
#ifdef NDEBUG
    benchmark::AddCustomContext("library_build_type", "release");
#else
    benchmark::AddCustomContext("library_build_type", "debug");
#endif
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  auto snap = sentinel::util::metrics().snapshot();
  // Machine context: two numbers a benchmark JSON means nothing without --
  // the CPU budget (raw hardware threads vs the cgroup-quota-capped usable
  // concurrency; they differ inside containers) and which kernel dispatch
  // level the host actually selected. bench_compare refuses to diff numbers
  // from mismatched machines using exactly these fields.
  const auto level = sentinel::kern::active_level();
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t usable = sentinel::util::default_concurrency();
  snap.add_counter("machine.hardware_threads", hw);
  snap.add_counter("machine.usable_concurrency", usable);
  snap.add_counter("machine.kernel_level", static_cast<std::uint64_t>(level));
  std::printf("\n-- machine --\nhardware_threads %zu, usable_concurrency %zu (cgroup quota%s), kernels %s\n",
              hw, usable, usable < hw ? " capped" : " uncapped",
              sentinel::kern::level_name(level));
  if (!snap.counters.empty() || !snap.histograms.empty()) {
    std::printf("\n-- metrics --\n%s", snap.to_text().c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (out) out << snap.to_json() << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write metrics json %s\n", metrics_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}

}  // namespace sentinel::bench_main
