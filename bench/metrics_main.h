// Shared bench main: BENCHMARK_MAIN() plus an observability tail. After the
// benchmarks run, the process-global metrics registry is dumped as a text
// block (so perf logs show queue depths, drops, and stage timers next to the
// timings) and, when `--metrics-json=PATH` was passed, written to PATH as
// JSON for CI artifacts. The flag is stripped before google-benchmark parses
// the remaining arguments.

#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/metrics.h"

namespace sentinel::bench_main {

inline int run(int argc, char** argv) {
  std::string metrics_path;
  std::vector<char*> pass;
  pass.reserve(static_cast<std::size_t>(argc) + 1);
  constexpr std::string_view kFlag = "--metrics-json=";
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(kFlag, 0) == 0) {
      metrics_path = std::string(arg.substr(kFlag.size()));
      continue;
    }
    pass.push_back(argv[i]);
  }
  pass.push_back(nullptr);  // argv contract: argv[argc] == nullptr
  int pargc = static_cast<int>(pass.size()) - 1;

  benchmark::Initialize(&pargc, pass.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, pass.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto snap = sentinel::util::metrics().snapshot();
  if (!snap.counters.empty() || !snap.histograms.empty()) {
    std::printf("\n-- metrics --\n%s", snap.to_text().c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (out) out << snap.to_json() << '\n';
    if (!out) {
      std::fprintf(stderr, "cannot write metrics json %s\n", metrics_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}

}  // namespace sentinel::bench_main
