// Ablation A6: the majority assumption. Correct-state identification
// (eq. 4) requires that the largest cluster of observations contain a
// majority of correct sensors; the paper assumes "a majority of sensors have
// not been compromised (yet)". This bench sweeps the coalition size for the
// Dynamic Deletion attack and shows where the methodology's guarantee
// breaks.
//
// Expected shape: reliable detection + classification while the coalition is
// a minority; at and beyond half the network the malicious cluster can win
// eq. (4), the "correct" state tracks the adversary, and the attack verdict
// degrades or disappears.

#include <cstdio>

#include "common/scenario.h"
#include "faults/attack_models.h"

int main() {
  using namespace sentinel;

  std::printf("# A6 -- coalition-size sweep, Dynamic Deletion attack (14-day runs)\n");
  std::printf("%12s %10s %10s %18s\n", "coalition", "fraction", "detected", "classified");

  for (const std::size_t coalition : {1u, 2u, 3u, 4u, 5u, 6u, 7u}) {
    bench::ScenarioConfig sc;
    sc.duration_days = 14.0;
    const double fraction = static_cast<double>(coalition) / 10.0;

    const auto inject = [&](faults::InjectionPlan& plan, const sim::Environment&) {
      for (std::size_t i = 0; i < coalition; ++i) {
        faults::DeletionAttackConfig ac;
        ac.deleted = faults::StateRegion{{31.0, 56.0}, 7.0};
        ac.hold_state = {24.0, 70.0};
        ac.fraction = fraction;
        plan.add(static_cast<SensorId>(9 - i), std::make_unique<faults::DynamicDeletionAttack>(ac),
                 2.0 * kSecondsPerDay);
      }
    };
    const auto r = bench::run_scenario({}, sc, inject);
    const auto report = r.pipeline->diagnose();
    std::printf("%9zu/10 %10.1f %10s %18s\n", coalition, fraction,
                report.network.verdict == core::Verdict::kAttack ? "yes" : "no",
                core::to_string(report.network.kind).c_str());
  }

  std::printf("\nexpected: attack/dynamic-deletion for minority coalitions; the verdict is\n");
  std::printf("no longer guaranteed once the coalition reaches half the network\n");
  return 0;
}
