// Fig. 10 + Table 6 reproduction: Dynamic Deletion attack. One-third of the
// sensors collude to erase the warm daytime state: whenever the true
// environment enters ~(31,56) they inject low temperature / high humidity so
// the network keeps observing ~(24,70) (the paper's example deletes (29,56)
// by holding the observation at (20,71)).
//
// Expected shape: two *rows* of B^CO are not orthogonal -- the deleted
// correct state (31,56) and the hold state (24,70) both emit the hold state
// -- and the classifier reports a Dynamic Deletion attack.

#include <cstdio>
#include <iostream>

#include "common/scenario.h"
#include "faults/attack_models.h"

int main() {
  using namespace sentinel;

  const bench::ScenarioConfig sc;

  const bench::ScenarioResult r =
      bench::run_scenario({}, sc, [&](faults::InjectionPlan& plan, const sim::Environment&) {
        for (const SensorId s : {7u, 8u, 9u}) {  // 3 of 10 sensors malicious
          faults::DeletionAttackConfig ac;
          ac.deleted = faults::StateRegion{{31.0, 56.0}, 7.0};
          ac.hold_state = {24.0, 70.0};
          ac.fraction = 0.3;
          plan.add(s, std::make_unique<faults::DynamicDeletionAttack>(ac),
                   /*start_time=*/2.0 * kSecondsPerDay);
        }
      });
  const auto& p = *r.pipeline;
  const auto lookup = p.centroid_lookup();

  std::printf("# Fig. 10 + Table 6 -- Dynamic Deletion attack (3/10 sensors malicious)\n\n");
  bench::print_emission(std::cout, p.m_co(), lookup, "Table 6 analogue -- B^CO:");

  const auto f = core::filter_emission(p.m_co(), p.significant_states(), false,
                                       r.pipeline_config.classifier);
  const auto orth = core::orthogonality(f, r.pipeline_config.classifier);
  std::printf("\nrow cross products: max %.3f (paper: rows (29,56) and (20,71) non-orthogonal)\n",
              orth.max_row_cross);
  for (const auto& [i, j] : orth.row_violations) {
    std::printf("  non-orthogonal rows: %s and %s\n", bench::state_label(i, lookup).c_str(),
                bench::state_label(j, lookup).c_str());
  }
  std::printf("col cross products: max %.3f (expected: orthogonal)\n", orth.max_col_cross);

  std::printf("\nclassification:\n%s", core::to_string(p.diagnose()).c_str());
  std::printf("\nexpected: network verdict attack/dynamic-deletion\n");
  return 0;
}
