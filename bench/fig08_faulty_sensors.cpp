// Fig. 8 reproduction: humidity (and temperature) reported over one week by
// the two faulty sensors versus a healthy one. The paper's sensor 6 reports
// a continuously decreasing humidity that bottoms out near zero; sensor 7
// reports ~10% higher humidity than correct sensors; sensor 9 is healthy.
// We inject the corresponding DriftFault and CalibrationFault (DESIGN.md
// substitution #2).

#include <cstdio>
#include <map>

#include "common/scenario.h"
#include "faults/fault_models.h"
#include "trace/windower.h"

int main() {
  using namespace sentinel;

  bench::ScenarioConfig sc;
  sc.duration_days = 7.0;

  const bench::ScenarioResult r =
      bench::run_scenario({}, sc, [](faults::InjectionPlan& plan, const sim::Environment&) {
        // Sensor 6: humidity drifts to ~0 over four days, then sticks there.
        plan.add(6, std::make_unique<faults::DriftFault>(/*attr=*/1, /*floor=*/1.0,
                                                         /*start_time=*/0.5 * kSecondsPerDay,
                                                         /*drift_seconds=*/4.0 * kSecondsPerDay));
        // Sensor 7: humidity calibration error, ~10% high.
        plan.add(7, std::make_unique<faults::CalibrationFault>(AttrVec{1.0, 1.10}));
      });

  // Hourly per-sensor means straight from the delivered trace.
  std::printf("# Fig. 8 -- humidity reported in one week by sensors 6 (drift-to-floor),\n");
  std::printf("# 7 (calibration +10%%), and 9 (healthy)\n");
  std::printf("%8s %10s %10s %10s\n", "hour", "s6_hum", "s7_hum", "s9_hum");

  const auto windows = window_trace(r.sim.trace, kSecondsPerHour);
  for (const auto& w : windows) {
    if (w.empty()) continue;
    const auto get = [&](SensorId id) -> double {
      const auto it = w.per_sensor.find(id);
      return it == w.per_sensor.end() ? -1.0 : it->second[1];
    };
    std::printf("%8.0f %10.2f %10.2f %10.2f\n", w.window_start / kSecondsPerHour, get(6), get(7),
                get(9));
  }

  std::printf("\n# expected: s6 decays toward ~1 and stays; s7 tracks s9 scaled by ~1.10;\n");
  std::printf("# s9 follows the diurnal humidity cycle\n");
  std::printf("\npipeline diagnosis after the week (still maturing -- a drifting fault has no\n");
  std::printf("fixed signature yet; the month-long E5/E6 benches show the settled verdicts):\n%s",
              core::to_string(r.pipeline->diagnose()).c_str());
  return 0;
}
