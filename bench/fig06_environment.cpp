// Fig. 6 reproduction: humidity and temperature variation over one complete
// day (the paper shows July 9th; we show day 9 of the simulated GDI month).
// Expected shape: temperature sweeps ~12..32 C with a mid-afternoon peak;
// humidity moves in anti-phase, ~56..96 %RH.

#include <cstdio>

#include "common/scenario.h"

int main() {
  using namespace sentinel;

  sim::GdiEnvironmentConfig cfg;
  cfg.duration_seconds = 31.0 * kSecondsPerDay;
  const sim::GdiEnvironment env(cfg);

  std::printf("# Fig. 6 -- temperature and humidity variation, day 9\n");
  std::printf("# paper shape: continuous diurnal variation; temp and humidity anti-correlated\n");
  std::printf("%8s %12s %12s\n", "hour", "temp_C", "humidity_%");

  const double day_start = 8.0 * kSecondsPerDay;  // day 9, zero-based day 8
  for (double h = 0.0; h < 24.0; h += 0.5) {
    const AttrVec v = env.truth(day_start + h * kSecondsPerHour);
    std::printf("%8.1f %12.2f %12.2f\n", h, v[0], v[1]);
  }

  // Whole-month envelope, to confirm the paper's "similar trend is observed
  // for the whole month".
  double tmin = 1e9, tmax = -1e9, hmin = 1e9, hmax = -1e9;
  for (double t = 0.0; t < cfg.duration_seconds; t += kSecondsPerHour) {
    const AttrVec v = env.truth(t);
    tmin = std::min(tmin, v[0]);
    tmax = std::max(tmax, v[0]);
    hmin = std::min(hmin, v[1]);
    hmax = std::max(hmax, v[1]);
  }
  std::printf("\n# month envelope: temp [%.1f, %.1f] C, humidity [%.1f, %.1f] %%\n", tmin, tmax,
              hmin, hmax);
  std::printf("# paper envelope (Fig. 6/7): temp ~[12, 32] C, humidity ~[56, 96] %%\n");
  return 0;
}
