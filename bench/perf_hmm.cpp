// P2 -- google-benchmark: classical HMM kernels (forward, Viterbi,
// Baum-Welch) and the online estimator. Quantifies the paper's core
// complexity argument: classical identification (the Warrender baseline's
// training) is orders of magnitude more expensive than the online update the
// redundancy-based approach gets away with.

#include <benchmark/benchmark.h>

#include "hmm/hmm.h"
#include "hmm/online_hmm.h"
#include "util/rng.h"

namespace {

using namespace sentinel;

hmm::Hmm make_model(std::size_t states, std::size_t symbols, std::uint64_t seed) {
  Rng rng(seed, "perf-hmm");
  return hmm::Hmm::random(states, symbols, rng);
}

void BM_Forward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto model = make_model(n, n, 7);
  Rng rng(11, "perf-seq");
  const auto sample = model.sample(512, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.log_likelihood(sample.symbols));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 512));
}

void BM_Viterbi(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto model = make_model(n, n, 7);
  Rng rng(11, "perf-seq");
  const auto sample = model.sample(512, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.viterbi(sample.symbols));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 512));
}

void BM_BaumWelch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto truth = make_model(n, n, 7);
  Rng rng(11, "perf-seq");
  const auto sample = truth.sample(256, rng);
  hmm::BaumWelchOptions opts;
  opts.max_iterations = 10;
  for (auto _ : state) {
    Rng init_rng(13, "perf-init");
    auto model = hmm::Hmm::random(n, n, init_rng);
    benchmark::DoNotOptimize(model.baum_welch({sample.symbols}, opts));
  }
}

void BM_OnlineHmmObserve(benchmark::State& state) {
  Rng rng(17, "perf-online");
  hmm::OnlineHmm m;
  std::vector<std::pair<hmm::StateId, hmm::StateId>> steps;
  for (std::size_t i = 0; i < 4096; ++i) {
    steps.emplace_back(static_cast<hmm::StateId>(rng.uniform_int(0, 7)),
                       static_cast<hmm::StateId>(rng.uniform_int(0, 7)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [h, s] = steps[i++ & 4095];
    m.observe(h, s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_Forward)->Arg(4)->Arg(8)->Arg(16)->Arg(40);
BENCHMARK(BM_Viterbi)->Arg(4)->Arg(8)->Arg(16)->Arg(40);
BENCHMARK(BM_BaumWelch)->Arg(4)->Arg(8)->Arg(16)->Arg(40);
BENCHMARK(BM_OnlineHmmObserve);
BENCHMARK_MAIN();
