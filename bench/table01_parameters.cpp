// Table 1 reproduction: the experimental setup parameters. Printed from the
// actual default configuration objects so the table cannot drift from the
// code.

#include <cstdio>

#include "common/scenario.h"

int main() {
  using namespace sentinel;

  const bench::ScenarioConfig sc;
  sim::GdiEnvironmentConfig ec;
  ec.duration_seconds = sc.duration_days * kSecondsPerDay;
  const sim::GdiEnvironment env(ec);
  const core::PipelineConfig pc = bench::make_pipeline_config(env, sc);

  std::printf("# Table 1 -- parameters used in the experimental setup\n");
  std::printf("%-10s %-55s %10s %10s\n", "param", "description", "paper", "ours");
  std::printf("%-10s %-55s %10s %10zu\n", "K", "Number of sensors", "10", sc.num_sensors);
  std::printf("%-10s %-55s %10s %10zu\n", "M", "Number of initial model states", "6",
              pc.initial_states.size());
  std::printf("%-10s %-55s %10s %10.0f\n", "w", "Observation window size (samples of 5 min)",
              "12", pc.window_seconds / (5.0 * kSecondsPerMinute));
  std::printf("%-10s %-55s %10s %10.2f\n", "alpha", "Learning factor for model states", "0.10",
              pc.model_states.alpha);
  std::printf("%-10s %-55s %10s %10.2f\n", "beta", "Learning factor for transition matrix A",
              "0.90", pc.beta);
  std::printf("%-10s %-55s %10s %10.2f\n", "gamma", "Learning factor for emission matrix B",
              "0.90", pc.gamma);
  return 0;
}
